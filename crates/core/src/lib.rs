//! # qsdd-core — stochastic quantum circuit simulation using decision diagrams
//!
//! This crate implements the contribution of Grurl, Kueng, Fuß and Wille,
//! *Stochastic Quantum Circuit Simulation Using Decision Diagrams*
//! (DATE 2021):
//!
//! 1. **Decision diagrams for individual simulation runs** — every stochastic
//!    run represents the state and the applied operators as decision diagrams
//!    (via `qsdd-dd`), which keeps structured states compact and lets noisy
//!    simulations scale to dozens of qubits ([`DdSimulator`]).
//! 2. **Concurrency across simulation runs** — the Monte-Carlo runner
//!    ([`stochastic::run_stochastic`]) executes the independent runs on
//!    multiple threads and merges histograms and observable estimates.
//!
//! Shot execution follows a **compile / execute** split: a circuit + noise
//! model pair is compiled once into an immutable program (operator
//! diagrams, noise tables resolved up front), and every shot replays that
//! program against a reusable per-worker execution context that is rewound
//! — not rebuilt — between shots. See [`StochasticBackend`] and
//! [`ShotEngine`].
//!
//! On top of the compiled pipeline sits **trajectory deduplication**
//! ([`dedup`]): every shot's error decisions are presampled up front,
//! shots are grouped by their error pattern, and each distinct trajectory
//! is simulated once — turning the hot path from `O(shots × circuit)` into
//! `O(unique_patterns × circuit + shots × sampling)` while staying
//! byte-identical to per-shot execution.
//!
//! The dense [`DenseSimulator`] back-end executes the identical stochastic
//! protocol on flat amplitude arrays and serves as the baseline
//! (Qiskit / Atos QLM stand-in) for the benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_circuit::generators::ghz;
//! use qsdd_core::{sampling, Observable, StochasticSimulator};
//! use qsdd_noise::NoiseModel;
//!
//! // How many samples do we need for 10 properties at 5 % accuracy?
//! let shots = sampling::required_samples(10, 0.05, 0.05).min(2000);
//!
//! let simulator = StochasticSimulator::new()
//!     .with_shots(shots)
//!     .with_noise(NoiseModel::paper_defaults())
//!     .with_seed(42);
//! let result = simulator.run_with_observables(
//!     &ghz(6),
//!     &[Observable::BasisProbability(0), Observable::QubitExcitation(3)],
//! );
//! assert!(result.observable_estimates[0] > 0.4);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod dd_backend;
pub mod deadline;
pub mod dedup;
pub mod dense_backend;
pub mod estimator;
pub mod fxhash;
pub mod sampling;
pub mod shot_engine;
pub mod simulator;
pub mod stochastic;
pub mod weighted;

pub use backend::{SingleRun, StochasticBackend};
pub use dd_backend::{DdContext, DdProgram, DdRunState, DdSimulator};
pub use deadline::{Deadline, TimedOut};
pub use dedup::{DedupStats, DedupSupport};
pub use dense_backend::{DenseContext, DenseProgram, DenseSimulator};
pub use estimator::{Observable, ObservableAccumulator};
pub use shot_engine::{ExecContext, ShotEngine, ShotSample};
pub use simulator::{BackendKind, StochasticSimulator};
pub use stochastic::{
    build_intra_pool, resolve_intra_threads, run_engine, run_engine_deadline, run_engine_dedup,
    run_engine_dedup_deadline, run_engine_in, run_engine_in_deadline, run_stochastic,
    StochasticConfig, StochasticOutcome,
};
// Re-exported so callers can share one fork-join pool across contexts
// without a direct `qsdd-dd` dependency.
pub use qsdd_dd::IntraPool;
pub use weighted::{
    run_engine_weighted, run_engine_weighted_deadline, run_engine_weighted_in,
    run_engine_weighted_in_deadline, WeightedOptions, WeightedStats, MAX_WEIGHTED_QUBITS,
};
// Re-exported so `StochasticSimulator::with_opt_level` is usable without a
// direct `qsdd-transpile` dependency.
pub use qsdd_transpile::OptLevel;
// Re-exported so consumers of `StochasticOutcome::stage_timings` can name
// the types without a direct `qsdd-telemetry` dependency.
pub use qsdd_telemetry::{Stage, StageTimings};
