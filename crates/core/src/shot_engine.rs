//! A re-entrant, shareable shot-execution engine.
//!
//! [`ShotEngine`] packages everything a single stochastic run needs — the
//! (optionally transpiled) circuit, the back-end, the noise model and the
//! master seed — behind one `&self` method, [`ShotEngine::run_shot`]. Because
//! the per-shot random number generator is derived purely from the master
//! seed and the shot index, any number of threads can call into the same
//! engine concurrently, in any order, and the result of shot `i` is always
//! the same.
//!
//! Two consumers share this API:
//!
//! * [`StochasticSimulator`](crate::StochasticSimulator) builds an engine per
//!   `run` call and drives it with the strided Monte-Carlo loop in
//!   [`crate::stochastic::run_engine`];
//! * the `qsdd-batch` scheduler builds one engine per job and lets its worker
//!   pool pull arbitrary `(job, shot)` pairs from a global queue.
//!
//! Outcomes are always reported in the *original* circuit's qubit order: if
//! the transpiler elided trailing SWAPs into an output relabeling, the engine
//! undoes that relabeling on every sampled outcome (and offers
//! [`ShotEngine::map_observables`] for the reverse direction).

use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;
use qsdd_transpile::{layout, transpile, OptLevel, TranspileResult};

use crate::backend::StochasticBackend;
use crate::dd_backend::DdSimulator;
use crate::dense_backend::DenseSimulator;
use crate::estimator::Observable;
use crate::simulator::BackendKind;
use crate::stochastic::shot_rng;

/// The aggregate-relevant result of one stochastic shot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotSample {
    /// Sampled measurement outcome as a basis-state index, reported in the
    /// original circuit's qubit order.
    pub outcome: u64,
    /// Number of stochastic error events that fired during the shot.
    pub error_events: u64,
    /// Node count of the final state's decision diagram (`0` on the dense
    /// statevector back-end, which has no diagram).
    pub dd_nodes: u64,
}

/// Monomorphised back-end storage (the engine must be a concrete type so the
/// batch scheduler can hold a heterogeneous fleet of engines in one `Vec`).
#[derive(Clone, Debug)]
enum EngineBackend {
    DecisionDiagram(DdSimulator),
    Statevector(DenseSimulator),
}

/// A re-entrant shot executor for one circuit.
///
/// Construction does all per-circuit work up front (transpilation, layout
/// bookkeeping); afterwards [`run_shot`](Self::run_shot) is pure with respect
/// to `&self` plus the shot index, so engines can be shared freely across
/// threads (the type is [`Sync`]).
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::ghz;
/// use qsdd_core::{BackendKind, OptLevel, ShotEngine};
/// use qsdd_noise::NoiseModel;
///
/// let engine = ShotEngine::new(
///     &ghz(4),
///     BackendKind::DecisionDiagram,
///     NoiseModel::noiseless(),
///     7,
///     OptLevel::O0,
/// );
/// // Re-entrant: the same shot index always yields the same sample.
/// assert_eq!(engine.run_shot(3), engine.run_shot(3));
/// // A noiseless GHZ shot lands on one of the two peaks.
/// let sample = engine.run_shot(0);
/// assert!(sample.outcome == 0 || sample.outcome == 0b1111);
/// assert_eq!(sample.error_events, 0);
/// ```
#[derive(Clone, Debug)]
pub struct ShotEngine {
    backend: EngineBackend,
    circuit: Circuit,
    /// `None` when the transpiler's output layout is the identity.
    output_layout: Option<Vec<usize>>,
    noise: NoiseModel,
    seed: u64,
}

impl ShotEngine {
    /// Builds an engine for `circuit`, transpiling it at `opt` first.
    ///
    /// The transpilation happens exactly once here; every subsequent shot
    /// executes the optimized circuit.
    pub fn new(
        circuit: &Circuit,
        backend: BackendKind,
        noise: NoiseModel,
        seed: u64,
        opt: OptLevel,
    ) -> Self {
        if opt == OptLevel::O0 {
            return ShotEngine {
                backend: EngineBackend::from_kind(backend),
                circuit: circuit.clone(),
                output_layout: None,
                noise,
                seed,
            };
        }
        ShotEngine::from_transpiled(&transpile(circuit, opt), backend, noise, seed)
    }

    /// Builds an engine from an already-transpiled circuit.
    ///
    /// Use this when the [`TranspileResult`] is needed anyway (e.g. to print
    /// its gate-count report) to avoid transpiling twice.
    pub fn from_transpiled(
        transpiled: &TranspileResult,
        backend: BackendKind,
        noise: NoiseModel,
        seed: u64,
    ) -> Self {
        ShotEngine {
            backend: EngineBackend::from_kind(backend),
            circuit: transpiled.circuit.clone(),
            output_layout: (!transpiled.has_identity_layout())
                .then(|| transpiled.output_layout.clone()),
            noise,
            seed,
        }
    }

    /// The circuit the engine actually executes (after transpilation).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of qubits of the executed circuit.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// The master seed shots are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The noise model applied after every gate.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Which back-end kind executes the shots.
    pub fn backend_kind(&self) -> BackendKind {
        match self.backend {
            EngineBackend::DecisionDiagram(_) => BackendKind::DecisionDiagram,
            EngineBackend::Statevector(_) => BackendKind::Statevector,
        }
    }

    /// Executes stochastic shot number `shot`.
    ///
    /// The shot's random number generator is derived deterministically from
    /// the engine seed and `shot`, so the result does not depend on which
    /// thread runs the shot or in which order shots are executed.
    pub fn run_shot(&self, shot: u64) -> ShotSample {
        self.run_shot_with_observables(shot, &[]).0
    }

    /// Executes shot `shot` and additionally evaluates quadratic observables
    /// on the shot's final state.
    ///
    /// The observables must already be expressed over the *executed*
    /// circuit's qubits — pass them through
    /// [`map_observables`](Self::map_observables) once per batch instead of
    /// remapping on every shot.
    pub fn run_shot_with_observables(
        &self,
        shot: u64,
        observables: &[Observable],
    ) -> (ShotSample, Vec<f64>) {
        let mut rng = shot_rng(self.seed, shot);
        let (mut sample, values) = match &self.backend {
            EngineBackend::DecisionDiagram(backend) => {
                self.execute(backend, &mut rng, observables, |run| {
                    run.state.node_count() as u64
                })
            }
            EngineBackend::Statevector(backend) => {
                self.execute(backend, &mut rng, observables, |_| 0)
            }
        };
        if let Some(output_layout) = &self.output_layout {
            // The transpiler only elides trailing SWAPs on measurement-free
            // circuits, where the outcome is a full-register sample, so
            // shuffling its bits through the layout restores the original
            // qubit order exactly.
            sample.outcome = layout::restore_outcome(sample.outcome, output_layout);
        }
        (sample, values)
    }

    /// Runs one shot on a concrete back-end and evaluates the observables;
    /// `dd_nodes` extracts the back-end-specific diagram size from the final
    /// run state.
    fn execute<B: StochasticBackend>(
        &self,
        backend: &B,
        rng: &mut rand::rngs::StdRng,
        observables: &[Observable],
        dd_nodes: impl FnOnce(&crate::backend::SingleRun<B::State>) -> u64,
    ) -> (ShotSample, Vec<f64>) {
        let mut run = backend.run_once(&self.circuit, &self.noise, rng);
        let values: Vec<f64> = observables
            .iter()
            .map(|o| backend.evaluate(&mut run, o))
            .collect();
        let sample = ShotSample {
            outcome: run.outcome,
            error_events: run.error_events as u64,
            dd_nodes: dd_nodes(&run),
        };
        (sample, values)
    }

    /// Re-expresses observables over the original qubits as observables over
    /// the executed circuit's qubits.
    ///
    /// With an identity layout this is a clone; otherwise qubit indices and
    /// basis indices are pushed through the transpiler's output layout. Call
    /// once before a shot loop and feed the result to
    /// [`run_shot_with_observables`](Self::run_shot_with_observables).
    pub fn map_observables(&self, observables: &[Observable]) -> Vec<Observable> {
        match &self.output_layout {
            None => observables.to_vec(),
            Some(output_layout) => observables
                .iter()
                .map(|observable| remap_observable(observable, output_layout))
                .collect(),
        }
    }
}

impl EngineBackend {
    fn from_kind(kind: BackendKind) -> Self {
        match kind {
            BackendKind::DecisionDiagram => EngineBackend::DecisionDiagram(DdSimulator::new()),
            BackendKind::Statevector => EngineBackend::Statevector(DenseSimulator::new()),
        }
    }
}

/// Re-expresses an observable over the original qubits as one over the
/// optimized circuit's qubits (`layout[q]` holds original qubit `q`).
fn remap_observable(observable: &Observable, output_layout: &[usize]) -> Observable {
    match observable {
        Observable::QubitExcitation(q) => Observable::QubitExcitation(output_layout[*q]),
        Observable::BasisProbability(index) => {
            Observable::BasisProbability(layout::permute_index(*index, output_layout))
        }
        Observable::Fidelity(amplitudes) => {
            let mut permuted = amplitudes.clone();
            for (index, amplitude) in amplitudes.iter().enumerate() {
                permuted[layout::permute_index(index as u64, output_layout) as usize] = *amplitude;
            }
            Observable::Fidelity(permuted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};

    #[test]
    fn shots_are_deterministic_and_reentrant() {
        let engine = ShotEngine::new(
            &ghz(6),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            42,
            OptLevel::O0,
        );
        let first: Vec<ShotSample> = (0..16).map(|s| engine.run_shot(s)).collect();
        // Replaying any shot, in any order, yields the identical sample.
        let replay: Vec<ShotSample> = (0..16).rev().map(|s| engine.run_shot(s)).collect();
        let mut replay = replay;
        replay.reverse();
        assert_eq!(first, replay);
    }

    #[test]
    fn engines_share_across_threads() {
        let engine = ShotEngine::new(
            &ghz(5),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            9,
            OptLevel::O0,
        );
        let sequential: Vec<u64> = (0..32).map(|s| engine.run_shot(s).outcome).collect();
        let mut concurrent = vec![0u64; 32];
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in concurrent.chunks_mut(8).enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = engine.run_shot((chunk_index * 8 + offset) as u64).outcome;
                    }
                });
            }
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn transpiled_engine_restores_original_qubit_order() {
        // qft ends in trailing SWAPs which O2 elides into a relabeling; the
        // engine must undo it so both engines sample the same distribution.
        let circuit = qft(3);
        let raw = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            3,
            OptLevel::O0,
        );
        let optimized = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            3,
            OptLevel::O2,
        );
        assert!(optimized.circuit().len() < raw.circuit().len());
        // Same seed, same shot index, but different circuits: outcomes need
        // not match shot-by-shot, yet both must stay within range and the
        // layout restoration must be exercised.
        for shot in 0..64 {
            assert!(optimized.run_shot(shot).outcome < 8);
        }
    }

    #[test]
    fn dense_backend_reports_zero_dd_nodes() {
        let engine = ShotEngine::new(
            &ghz(4),
            BackendKind::Statevector,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        let sample = engine.run_shot(0);
        assert_eq!(sample.dd_nodes, 0);
        let dd = ShotEngine::new(
            &ghz(4),
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        assert!(dd.run_shot(0).dd_nodes > 0);
    }

    #[test]
    fn map_observables_is_identity_without_layout() {
        let engine = ShotEngine::new(
            &ghz(3),
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        let observables = vec![Observable::QubitExcitation(2)];
        assert_eq!(engine.map_observables(&observables), observables);
    }
}
