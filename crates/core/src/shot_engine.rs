//! A re-entrant, shareable shot-execution engine.
//!
//! [`ShotEngine`] packages everything a stochastic shot needs — the
//! (optionally transpiled) circuit **compiled into an executable program**,
//! the back-end, the noise model and the master seed — behind `&self`
//! methods. Construction performs all per-circuit work exactly once:
//! transpilation, layout bookkeeping, and the back-end's compile phase
//! (operator diagrams, noise tables; see
//! [`StochasticBackend::compile`](crate::StochasticBackend::compile)).
//!
//! Shots execute against a reusable per-worker [`ExecContext`]: create one
//! context per worker thread ([`ShotEngine::new_context`]) and feed it to
//! [`ShotEngine::run_shot_in`] for every shot that worker executes — across
//! chunks, and across engines (a context re-seats itself when handed a
//! different engine of the same back-end kind). Because the per-shot random
//! number generator is derived purely from the master seed and the shot
//! index, and because context reuse is bit-identical to fresh execution,
//! any number of threads can pull arbitrary shots from the same engine, in
//! any order, and the result of shot `i` is always the same.
//!
//! Two consumers share this API:
//!
//! * [`StochasticSimulator`](crate::StochasticSimulator) builds an engine
//!   per `run` call and drives it with the strided Monte-Carlo loop in
//!   [`crate::stochastic::run_engine`];
//! * the `qsdd-batch` scheduler builds one engine per job and lets its
//!   worker pool pull arbitrary `(job, shot)` pairs from a global queue,
//!   each worker reusing one long-lived context per back-end kind.
//!
//! Outcomes are always reported in the *original* circuit's qubit order: if
//! the transpiler elided trailing SWAPs into an output relabeling, the
//! engine undoes that relabeling on every sampled outcome (and offers
//! [`ShotEngine::map_observables`] for the reverse direction).

use std::sync::Arc;
use std::time::Instant;

use qsdd_circuit::Circuit;
use qsdd_dd::{IntraPool, TableStats};
use qsdd_noise::{ErrorPattern, NoiseModel, Presampled};
use qsdd_telemetry::{Stage, StageTimings};
use qsdd_transpile::{layout, transpile, OptLevel, TranspileResult};
use rand::rngs::StdRng;

use crate::backend::StochasticBackend;
use crate::dd_backend::{DdContext, DdProgram, DdSimulator};
use crate::deadline::{Deadline, TimedOut};
use crate::dedup::{execute_group, run_dedup, DedupSupport};
use crate::dense_backend::{DenseContext, DenseProgram, DenseSimulator};
use crate::estimator::Observable;
use crate::simulator::BackendKind;
use crate::stochastic::{shot_rng, StochasticOutcome};

/// The aggregate-relevant result of one stochastic shot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotSample {
    /// Sampled measurement outcome as a basis-state index, reported in the
    /// original circuit's qubit order.
    pub outcome: u64,
    /// Number of stochastic error events that fired during the shot.
    pub error_events: u64,
    /// Node count of the final state's decision diagram (`0` on the dense
    /// statevector back-end, which has no diagram).
    pub dd_nodes: u64,
    /// Peak node count the state diagram reached at any point during the
    /// shot — the memory high-water mark, sampled after every applied
    /// operation (`0` on the dense back-end).
    pub dd_nodes_peak: u64,
}

/// Monomorphised back-end + compiled-program storage (the engine must be a
/// concrete type so the batch scheduler can hold a heterogeneous fleet of
/// engines in one `Vec`).
#[derive(Clone, Debug)]
enum EngineBackend {
    DecisionDiagram {
        backend: DdSimulator,
        program: Box<DdProgram>,
    },
    Statevector {
        backend: DenseSimulator,
        program: Box<DenseProgram>,
    },
}

/// A reusable per-worker execution context for [`ShotEngine`] shots.
///
/// A context starts empty and lazily builds one inner context **per
/// back-end kind** on first use, so a worker alternating between
/// decision-diagram and statevector engines keeps both warm — neither is
/// discarded when the other runs. Handing it to a different compiled
/// program of the same kind re-seats the inner context transparently.
/// Reuse is purely an optimisation: every shot behaves exactly as if it
/// ran in a brand-new context.
#[derive(Debug, Default)]
pub struct ExecContext {
    dd: Option<Box<DdContext>>,
    dense: Option<Box<DenseContext>>,
    /// Secondary contexts for trajectory-group execution: the primary
    /// context holds a group's checkpointed pattern run while member shots
    /// resume live in the auxiliary one.
    dd_aux: Option<Box<DdContext>>,
    dense_aux: Option<Box<DenseContext>>,
    /// Fork-join pool for intra-shot parallelism, installed into every
    /// inner context (existing and lazily created).
    intra: Option<Arc<IntraPool>>,
}

/// Creates an inner DD context with the pool pre-installed.
fn new_dd_ctx(intra: &Option<Arc<IntraPool>>) -> Box<DdContext> {
    let mut ctx = Box::<DdContext>::default();
    ctx.set_intra_pool(intra.clone());
    ctx
}

/// Creates an inner dense context with the pool pre-installed.
fn new_dense_ctx(intra: &Option<Arc<IntraPool>>) -> Box<DenseContext> {
    let mut ctx = Box::<DenseContext>::default();
    ctx.set_intra_pool(intra.clone());
    ctx
}

impl ExecContext {
    /// Creates an empty context, usable with any engine.
    pub fn new() -> Self {
        ExecContext::default()
    }

    /// Requests intra-shot parallelism with `threads` workers for every
    /// shot executed in this context (see [`IntraPool`]); `threads <= 1`
    /// restores serial execution. The pool is created once and reused
    /// across calls with the same width. Results are bit-identical for
    /// every setting.
    pub fn set_intra_threads(&mut self, threads: usize) {
        if threads <= 1 {
            self.set_intra_pool(None);
        } else if self.intra.as_ref().map(|pool| pool.threads()) != Some(threads) {
            self.set_intra_pool(Some(Arc::new(IntraPool::new(threads))));
        }
    }

    /// Installs (or clears) a shared fork-join pool for intra-shot
    /// parallelism. Drivers that run several contexts concurrently hand
    /// every worker a clone of one pool instead of letting each build its
    /// own (see [`crate::run_engine`]).
    pub fn set_intra_pool(&mut self, pool: Option<Arc<IntraPool>>) {
        self.intra = pool;
        if let Some(ctx) = self.dd.as_deref_mut() {
            ctx.set_intra_pool(self.intra.clone());
        }
        if let Some(ctx) = self.dd_aux.as_deref_mut() {
            ctx.set_intra_pool(self.intra.clone());
        }
        if let Some(ctx) = self.dense.as_deref_mut() {
            ctx.set_intra_pool(self.intra.clone());
        }
        if let Some(ctx) = self.dense_aux.as_deref_mut() {
            ctx.set_intra_pool(self.intra.clone());
        }
    }

    /// The currently installed fork-join pool, if any.
    pub fn intra_pool(&self) -> Option<&Arc<IntraPool>> {
        self.intra.as_ref()
    }

    /// Borrows the decision-diagram context, creating it on first use.
    fn dd_mut(&mut self) -> &mut DdContext {
        let intra = &self.intra;
        self.dd.get_or_insert_with(|| new_dd_ctx(intra))
    }

    /// Borrows the statevector context, creating it on first use.
    fn dense_mut(&mut self) -> &mut DenseContext {
        let intra = &self.intra;
        self.dense.get_or_insert_with(|| new_dense_ctx(intra))
    }

    /// Snapshot of the decision-diagram table counters accumulated by this
    /// context's packages (primary + auxiliary), for before/after deltas
    /// around a job. Zero when no decision-diagram shot ran yet.
    pub(crate) fn dd_table_stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for ctx in [self.dd.as_deref(), self.dd_aux.as_deref()]
            .into_iter()
            .flatten()
        {
            let stats = ctx.package().table_stats();
            total.vec_unique_hits += stats.vec_unique_hits;
            total.vec_unique_misses += stats.vec_unique_misses;
            total.mat_unique_hits += stats.mat_unique_hits;
            total.mat_unique_misses += stats.mat_unique_misses;
            total.compute_hits += stats.compute_hits;
            total.compute_misses += stats.compute_misses;
            total.stripe_contention += stats.stripe_contention;
        }
        total
    }

    /// Entries per lock stripe of the decision-diagram tables (primary and
    /// auxiliary contexts summed per stripe), as
    /// `(table name, occupancy per stripe)` pairs. Empty when no
    /// decision-diagram shot ran yet.
    pub(crate) fn dd_stripe_occupancy(&self) -> Vec<(&'static str, Vec<usize>)> {
        let mut merged: Vec<(&'static str, Vec<usize>)> = Vec::new();
        for ctx in [self.dd.as_deref(), self.dd_aux.as_deref()]
            .into_iter()
            .flatten()
        {
            for (at, (name, lens)) in ctx.package().stripe_occupancy().into_iter().enumerate() {
                if merged.len() <= at {
                    merged.push((name, lens));
                } else {
                    for (slot, add) in merged[at].1.iter_mut().zip(lens) {
                        *slot += add;
                    }
                }
            }
        }
        merged
    }

    /// Borrows the decision-diagram context pair (primary + auxiliary).
    fn dd_pair(&mut self) -> (&mut DdContext, &mut DdContext) {
        let intra = &self.intra;
        self.dd.get_or_insert_with(|| new_dd_ctx(intra));
        self.dd_aux.get_or_insert_with(|| new_dd_ctx(intra));
        match (&mut self.dd, &mut self.dd_aux) {
            (Some(primary), Some(aux)) => (primary, aux),
            _ => unreachable!("both contexts were just created"),
        }
    }

    /// Borrows the statevector context pair (primary + auxiliary).
    fn dense_pair(&mut self) -> (&mut DenseContext, &mut DenseContext) {
        let intra = &self.intra;
        self.dense.get_or_insert_with(|| new_dense_ctx(intra));
        self.dense_aux.get_or_insert_with(|| new_dense_ctx(intra));
        match (&mut self.dense, &mut self.dense_aux) {
            (Some(primary), Some(aux)) => (primary, aux),
            _ => unreachable!("both contexts were just created"),
        }
    }
}

/// A re-entrant shot executor for one circuit.
///
/// Construction does all per-circuit work up front (transpilation, layout
/// bookkeeping, back-end compilation); afterwards
/// [`run_shot_in`](Self::run_shot_in) is pure with respect to `&self` plus
/// the shot index, so engines can be shared freely across threads (the type
/// is [`Sync`]) while each thread supplies its own [`ExecContext`].
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::ghz;
/// use qsdd_core::{BackendKind, OptLevel, ShotEngine};
/// use qsdd_noise::NoiseModel;
///
/// let engine = ShotEngine::new(
///     &ghz(4),
///     BackendKind::DecisionDiagram,
///     NoiseModel::noiseless(),
///     7,
///     OptLevel::O0,
/// );
/// // Re-entrant: the same shot index always yields the same sample, and a
/// // reused context gives the same results as one-off execution.
/// let mut ctx = engine.new_context();
/// assert_eq!(engine.run_shot_in(&mut ctx, 3), engine.run_shot(3));
/// // A noiseless GHZ shot lands on one of the two peaks.
/// let sample = engine.run_shot_in(&mut ctx, 0);
/// assert!(sample.outcome == 0 || sample.outcome == 0b1111);
/// assert_eq!(sample.error_events, 0);
/// ```
#[derive(Clone, Debug)]
pub struct ShotEngine {
    backend: EngineBackend,
    circuit: Circuit,
    /// `None` when the transpiler's output layout is the identity.
    output_layout: Option<Vec<usize>>,
    noise: NoiseModel,
    seed: u64,
    /// How the compiled program supports trajectory deduplication, resolved
    /// once at construction (`None`: every shot must execute live).
    dedup: Option<DedupSupport>,
    /// Wall time spent in the construction stages (transpile, compile), so
    /// runners can fold the one-off setup cost into a job's stage breakdown.
    timings: StageTimings,
    /// Requested intra-shot parallelism width (1 = serial). Drivers resolve
    /// this against their own worker count and core budget before building
    /// a pool (see [`crate::run_engine`]).
    intra_threads: usize,
}

impl ShotEngine {
    /// Builds an engine for `circuit`, transpiling it at `opt` first.
    ///
    /// Transpilation and back-end compilation happen exactly once here;
    /// every subsequent shot executes the precompiled program.
    pub fn new(
        circuit: &Circuit,
        backend: BackendKind,
        noise: NoiseModel,
        seed: u64,
        opt: OptLevel,
    ) -> Self {
        if opt == OptLevel::O0 {
            let compile_started = Instant::now();
            let backend = EngineBackend::compile(backend, circuit, &noise);
            let mut timings = StageTimings::new();
            timings.record(Stage::Compile, compile_started.elapsed());
            return ShotEngine {
                dedup: backend.dedup_support(),
                backend,
                circuit: circuit.clone(),
                output_layout: None,
                noise,
                seed,
                timings,
                intra_threads: 1,
            };
        }
        let transpile_started = Instant::now();
        let transpiled = transpile(circuit, opt);
        let transpile_time = transpile_started.elapsed();
        let mut engine = ShotEngine::from_transpiled(&transpiled, backend, noise, seed);
        engine.timings.record(Stage::Transpile, transpile_time);
        engine
    }

    /// Builds an engine from an already-transpiled circuit.
    ///
    /// Use this when the [`TranspileResult`] is needed anyway (e.g. to print
    /// its gate-count report) to avoid transpiling twice.
    pub fn from_transpiled(
        transpiled: &TranspileResult,
        backend: BackendKind,
        noise: NoiseModel,
        seed: u64,
    ) -> Self {
        let compile_started = Instant::now();
        let backend = EngineBackend::compile(backend, &transpiled.circuit, &noise);
        let mut timings = StageTimings::new();
        timings.record(Stage::Compile, compile_started.elapsed());
        ShotEngine {
            dedup: backend.dedup_support(),
            backend,
            circuit: transpiled.circuit.clone(),
            output_layout: (!transpiled.has_identity_layout())
                .then(|| transpiled.output_layout.clone()),
            noise,
            seed,
            timings,
            intra_threads: 1,
        }
    }

    /// Requests intra-shot parallelism with `threads` workers for shots
    /// driven through this engine's runners ([`crate::run_engine`] and
    /// friends); `1` (the default) keeps execution serial. The request is
    /// clamped against the driver's own worker count so inter-shot and
    /// intra-shot parallelism never oversubscribe the machine. Results are
    /// bit-identical for every setting.
    pub fn set_intra_threads(&mut self, threads: usize) {
        self.intra_threads = threads.max(1);
    }

    /// Builder form of [`set_intra_threads`](Self::set_intra_threads).
    pub fn with_intra_threads(mut self, threads: usize) -> Self {
        self.set_intra_threads(threads);
        self
    }

    /// The requested intra-shot parallelism width (1 = serial).
    pub fn intra_threads(&self) -> usize {
        self.intra_threads
    }

    /// Wall time the construction stages took (transpile and compile), as a
    /// [`StageTimings`] ready to merge into a run's breakdown.
    pub fn stage_timings(&self) -> StageTimings {
        self.timings
    }

    /// The circuit the engine actually executes (after transpilation).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of qubits of the executed circuit.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// The master seed shots are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The noise model applied after every gate.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Which back-end kind executes the shots.
    pub fn backend_kind(&self) -> BackendKind {
        match self.backend {
            EngineBackend::DecisionDiagram { .. } => BackendKind::DecisionDiagram,
            EngineBackend::Statevector { .. } => BackendKind::Statevector,
        }
    }

    /// Creates a fresh execution context for this engine.
    ///
    /// One context per worker thread is the intended granularity; the same
    /// context can subsequently be reused with *other* engines too (it
    /// re-seats itself on the first shot of each program).
    pub fn new_context(&self) -> ExecContext {
        ExecContext::new()
    }

    /// Executes stochastic shot number `shot` in the given reusable
    /// context.
    ///
    /// The shot's random number generator is derived deterministically from
    /// the engine seed and `shot`, and context reuse is unobservable, so
    /// the result does not depend on which thread runs the shot, in which
    /// order shots are executed, or what the context ran before.
    pub fn run_shot_in(&self, ctx: &mut ExecContext, shot: u64) -> ShotSample {
        self.run_shot_with_observables_in(ctx, shot, &[]).0
    }

    /// Executes shot `shot` in a throwaway context.
    ///
    /// Convenience for one-off shots; hot loops should create one context
    /// per worker with [`new_context`](Self::new_context) and use
    /// [`run_shot_in`](Self::run_shot_in) to amortise the per-context
    /// setup.
    pub fn run_shot(&self, shot: u64) -> ShotSample {
        let mut ctx = self.new_context();
        self.run_shot_in(&mut ctx, shot)
    }

    /// Executes shot `shot` in the given context and additionally evaluates
    /// quadratic observables on the shot's final state.
    ///
    /// The observables must already be expressed over the *executed*
    /// circuit's qubits — pass them through
    /// [`map_observables`](Self::map_observables) once per batch instead of
    /// remapping on every shot.
    pub fn run_shot_with_observables_in(
        &self,
        ctx: &mut ExecContext,
        shot: u64,
        observables: &[Observable],
    ) -> (ShotSample, Vec<f64>) {
        let mut rng = shot_rng(self.seed, shot);
        self.run_with_rng_in(ctx, &mut rng, observables)
    }

    /// Executes one live shot with a caller-supplied generator (the
    /// weighted tail sampler derives its generators from a salted seed
    /// stream rather than the shot index).
    pub(crate) fn run_with_rng_in(
        &self,
        ctx: &mut ExecContext,
        rng: &mut StdRng,
        observables: &[Observable],
    ) -> (ShotSample, Vec<f64>) {
        let (mut sample, values) = match &self.backend {
            EngineBackend::DecisionDiagram { backend, program } => {
                execute(backend, program, ctx.dd_mut(), rng, observables)
            }
            EngineBackend::Statevector { backend, program } => {
                execute(backend, program, ctx.dense_mut(), rng, observables)
            }
        };
        if let Some(output_layout) = &self.output_layout {
            // The transpiler only elides trailing SWAPs on measurement-free
            // circuits, where the outcome is a full-register sample, so
            // shuffling its bits through the layout restores the original
            // qubit order exactly.
            sample.outcome = layout::restore_outcome(sample.outcome, output_layout);
        }
        (sample, values)
    }

    /// Executes shot `shot` with observables in a throwaway context (see
    /// [`run_shot_with_observables_in`](Self::run_shot_with_observables_in)).
    pub fn run_shot_with_observables(
        &self,
        shot: u64,
        observables: &[Observable],
    ) -> (ShotSample, Vec<f64>) {
        let mut ctx = self.new_context();
        self.run_shot_with_observables_in(&mut ctx, shot, observables)
    }

    /// `true` when the compiled program supports trajectory deduplication
    /// (see [`crate::dedup`]): shots can then be presampled with
    /// [`presample_shot`](Self::presample_shot) and executed in groups with
    /// [`run_group_in`](Self::run_group_in).
    pub fn supports_dedup(&self) -> bool {
        self.dedup.is_some()
    }

    /// `true` when the compiled program supports weighted trajectory
    /// enumeration (see [`crate::weighted`]): the whole program must be
    /// pattern-replayable ([`DedupSupport::full`] — no mid-circuit
    /// measurements or resets) and small enough that the exact outcome
    /// histogram stays tractable.
    pub fn supports_weighted(&self) -> bool {
        self.dedup.as_ref().is_some_and(|support| support.full)
            && self.num_qubits() <= crate::weighted::MAX_WEIGHTED_QUBITS
    }

    /// The presample plan weighted enumeration walks; `None` when the
    /// engine does not support weighted enumeration.
    pub(crate) fn weighted_plan(&self) -> Option<&qsdd_noise::PresamplePlan> {
        if !self.supports_weighted() {
            return None;
        }
        self.dedup.as_ref().map(|support| &support.plan)
    }

    /// Simulates one enumerated error pattern and feeds the final state's
    /// exact outcome distribution into `sink` (outcomes restored to the
    /// original qubit order). Returns the pattern run's statistics and the
    /// observables' exact values on the pattern's final state.
    ///
    /// `observables` must already be mapped through
    /// [`map_observables`](Self::map_observables).
    ///
    /// # Panics
    ///
    /// Panics if the engine does not support weighted enumeration
    /// ([`supports_weighted`](Self::supports_weighted)).
    pub(crate) fn run_weighted_pattern_in(
        &self,
        ctx: &mut ExecContext,
        pattern: &ErrorPattern,
        observables: &[Observable],
        sink: &mut dyn FnMut(u64, f64),
    ) -> (ShotSample, Vec<f64>) {
        assert!(
            self.supports_weighted(),
            "run_weighted_pattern_in requires an engine with weighted support"
        );
        let output_layout = self.output_layout.as_deref();
        let mut restore = |outcome: u64, probability: f64| match output_layout {
            Some(output_layout) => {
                sink(layout::restore_outcome(outcome, output_layout), probability)
            }
            None => sink(outcome, probability),
        };
        match &self.backend {
            EngineBackend::DecisionDiagram { backend, program } => {
                let ctx = ctx.dd_mut();
                let mut run = backend.run_pattern(program, ctx, pattern);
                let values: Vec<f64> = observables
                    .iter()
                    .map(|o| backend.evaluate(program, ctx, &mut run, o))
                    .collect();
                backend.outcome_distribution(program, ctx, &run, &mut restore);
                (
                    ShotSample {
                        outcome: 0,
                        error_events: run.error_events as u64,
                        dd_nodes: run.dd_nodes,
                        dd_nodes_peak: run.dd_nodes_peak,
                    },
                    values,
                )
            }
            EngineBackend::Statevector { backend, program } => {
                let ctx = ctx.dense_mut();
                let mut run = backend.run_pattern(program, ctx, pattern);
                let values: Vec<f64> = observables
                    .iter()
                    .map(|o| backend.evaluate(program, ctx, &mut run, o))
                    .collect();
                backend.outcome_distribution(program, ctx, &run, &mut restore);
                (
                    ShotSample {
                        outcome: 0,
                        error_events: run.error_events as u64,
                        dd_nodes: run.dd_nodes,
                        dd_nodes_peak: run.dd_nodes_peak,
                    },
                    values,
                )
            }
        }
    }

    /// Resolves shot `shot`'s error decisions up front.
    ///
    /// Returns the shot's [`ErrorPattern`] together with its generator —
    /// positioned exactly where live execution would be after the covered
    /// exposures — when the shot is deduplicable; `None` when the engine
    /// does not support deduplication or the shot must execute live
    /// (state-dependent decision ahead). Shots with equal patterns belong
    /// in the same [`run_group_in`](Self::run_group_in) group.
    pub fn presample_shot(&self, shot: u64) -> Option<(ErrorPattern, StdRng)> {
        let support = self.dedup.as_ref()?;
        let mut rng = shot_rng(self.seed, shot);
        match support.plan.presample(&mut rng) {
            Presampled::Pattern(pattern) => Some((pattern, rng)),
            Presampled::Live => None,
        }
    }

    /// Presamples a contiguous shot range and groups it by error pattern:
    /// groups in first-appearance order (members in shot order) plus the
    /// live shots in index order, or `None` when the engine does not
    /// support deduplication.
    ///
    /// This is the building block for bounded-memory consumers (the batch
    /// scheduler presamples one round at a time with it); each group feeds
    /// straight into [`run_group_in`](Self::run_group_in), each live shot
    /// into [`run_shot_in`](Self::run_shot_in).
    #[allow(clippy::type_complexity)]
    pub fn presample_range(
        &self,
        range: std::ops::Range<u64>,
    ) -> Option<(Vec<(ErrorPattern, Vec<(u64, StdRng)>)>, Vec<u64>)> {
        let support = self.dedup.as_ref()?;
        Some(crate::dedup::group_range(&support.plan, range, self.seed))
    }

    /// Executes one trajectory group: the shared `pattern` is simulated
    /// once and every member shot receives its own sample (outcome drawn
    /// from the shared state, or resumed live after a deduplicated prefix).
    ///
    /// `shots` are `(shot index, generator)` pairs as returned by
    /// [`presample_shot`](Self::presample_shot), all with the identical
    /// pattern; `observables` must already be mapped through
    /// [`map_observables`](Self::map_observables). Every returned sample is
    /// byte-identical to what [`run_shot_in`](Self::run_shot_in) would
    /// produce for the same shot index.
    ///
    /// # Panics
    ///
    /// Panics if the engine does not support deduplication
    /// ([`supports_dedup`](Self::supports_dedup)).
    pub fn run_group_in(
        &self,
        ctx: &mut ExecContext,
        pattern: &ErrorPattern,
        shots: &mut [(u64, StdRng)],
        observables: &[Observable],
    ) -> Vec<(u64, ShotSample, Vec<f64>)> {
        let support = self
            .dedup
            .as_ref()
            .expect("run_group_in requires an engine with dedup support");
        let mut out = Vec::with_capacity(shots.len());
        let sink = |shot: u64, sample: ShotSample, values: &[f64]| {
            out.push((shot, sample, values.to_vec()));
        };
        match &self.backend {
            EngineBackend::DecisionDiagram { backend, program } => {
                let (pattern_ctx, work_ctx) = ctx.dd_pair();
                execute_group(
                    backend,
                    program,
                    support,
                    pattern_ctx,
                    work_ctx,
                    pattern,
                    shots,
                    observables,
                    sink,
                );
            }
            EngineBackend::Statevector { backend, program } => {
                let (pattern_ctx, work_ctx) = ctx.dense_pair();
                execute_group(
                    backend,
                    program,
                    support,
                    pattern_ctx,
                    work_ctx,
                    pattern,
                    shots,
                    observables,
                    sink,
                );
            }
        }
        if let Some(output_layout) = &self.output_layout {
            for (_, sample, _) in &mut out {
                sample.outcome = layout::restore_outcome(sample.outcome, output_layout);
            }
        }
        out
    }

    /// Runs the deduplicating Monte-Carlo driver over shots `0..shots`, or
    /// returns `None` when the program does not support deduplication.
    ///
    /// `threads` must already be resolved and capped at the shot count;
    /// observables are mapped and outcomes restored to the original qubit
    /// order internally. The inner `Result` carries the `deadline`'s
    /// cooperative-timeout verdict.
    pub(crate) fn dedup_outcome(
        &self,
        shots: usize,
        threads: usize,
        observables: &[Observable],
        intra: Option<&Arc<IntraPool>>,
        started: Instant,
        deadline: &Deadline,
    ) -> Option<Result<StochasticOutcome, TimedOut>> {
        let support = self.dedup.as_ref()?;
        let mapped = self.map_observables(observables);
        let output_layout = self.output_layout.as_deref();
        Some(match &self.backend {
            EngineBackend::DecisionDiagram { backend, program } => run_dedup(
                backend,
                program.as_ref(),
                support,
                shots,
                threads,
                self.seed,
                &mapped,
                output_layout,
                intra,
                started,
                deadline,
            ),
            EngineBackend::Statevector { backend, program } => run_dedup(
                backend,
                program.as_ref(),
                support,
                shots,
                threads,
                self.seed,
                &mapped,
                output_layout,
                intra,
                started,
                deadline,
            ),
        })
    }

    /// Re-expresses observables over the original qubits as observables over
    /// the executed circuit's qubits.
    ///
    /// With an identity layout this is a clone; otherwise qubit indices and
    /// basis indices are pushed through the transpiler's output layout. Call
    /// once before a shot loop and feed the result to
    /// [`run_shot_with_observables_in`](Self::run_shot_with_observables_in).
    pub fn map_observables(&self, observables: &[Observable]) -> Vec<Observable> {
        match &self.output_layout {
            None => observables.to_vec(),
            Some(output_layout) => observables
                .iter()
                .map(|observable| remap_observable(observable, output_layout))
                .collect(),
        }
    }
}

impl EngineBackend {
    fn compile(kind: BackendKind, circuit: &Circuit, noise: &NoiseModel) -> Self {
        match kind {
            BackendKind::DecisionDiagram => {
                let backend = DdSimulator::new();
                let program = Box::new(backend.compile(circuit, noise));
                EngineBackend::DecisionDiagram { backend, program }
            }
            BackendKind::Statevector => {
                let backend = DenseSimulator::new();
                let program = Box::new(backend.compile(circuit, noise));
                EngineBackend::Statevector { backend, program }
            }
        }
    }

    fn dedup_support(&self) -> Option<DedupSupport> {
        match self {
            EngineBackend::DecisionDiagram { backend, program } => backend.dedup_support(program),
            EngineBackend::Statevector { backend, program } => backend.dedup_support(program),
        }
    }
}

/// Runs one shot on a concrete back-end and evaluates the observables;
/// `SingleRun` carries the diagram statistics uniformly (zero on back-ends
/// without diagrams), so both engine arms share this body.
fn execute<B: StochasticBackend>(
    backend: &B,
    program: &B::Program,
    ctx: &mut B::Context,
    rng: &mut rand::rngs::StdRng,
    observables: &[Observable],
) -> (ShotSample, Vec<f64>) {
    let mut run = backend.run_shot(program, ctx, rng);
    let values: Vec<f64> = observables
        .iter()
        .map(|o| backend.evaluate(program, ctx, &mut run, o))
        .collect();
    (
        ShotSample {
            outcome: run.outcome,
            error_events: run.error_events as u64,
            dd_nodes: run.dd_nodes,
            dd_nodes_peak: run.dd_nodes_peak,
        },
        values,
    )
}

/// Re-expresses an observable over the original qubits as one over the
/// optimized circuit's qubits (`layout[q]` holds original qubit `q`).
fn remap_observable(observable: &Observable, output_layout: &[usize]) -> Observable {
    match observable {
        Observable::QubitExcitation(q) => Observable::QubitExcitation(output_layout[*q]),
        Observable::BasisProbability(index) => {
            Observable::BasisProbability(layout::permute_index(*index, output_layout))
        }
        Observable::Fidelity(amplitudes) => {
            let mut permuted = amplitudes.clone();
            for (index, amplitude) in amplitudes.iter().enumerate() {
                permuted[layout::permute_index(index as u64, output_layout) as usize] = *amplitude;
            }
            Observable::Fidelity(permuted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};

    #[test]
    fn shots_are_deterministic_and_reentrant() {
        let engine = ShotEngine::new(
            &ghz(6),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            42,
            OptLevel::O0,
        );
        let mut ctx = engine.new_context();
        let first: Vec<ShotSample> = (0..16).map(|s| engine.run_shot_in(&mut ctx, s)).collect();
        // Replaying any shot, in any order, in the same (reused) context,
        // yields the identical sample.
        let replay: Vec<ShotSample> = (0..16)
            .rev()
            .map(|s| engine.run_shot_in(&mut ctx, s))
            .collect();
        let mut replay = replay;
        replay.reverse();
        assert_eq!(first, replay);
    }

    #[test]
    fn reused_context_matches_throwaway_contexts() {
        let engine = ShotEngine::new(
            &qft(5),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            77,
            OptLevel::O0,
        );
        let mut ctx = engine.new_context();
        for shot in 0..32 {
            assert_eq!(engine.run_shot_in(&mut ctx, shot), engine.run_shot(shot));
        }
    }

    #[test]
    fn one_context_serves_engines_of_both_kinds() {
        let dd = ShotEngine::new(
            &ghz(4),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            5,
            OptLevel::O0,
        );
        let dense = ShotEngine::new(
            &ghz(4),
            BackendKind::Statevector,
            NoiseModel::paper_defaults(),
            5,
            OptLevel::O0,
        );
        let mut ctx = ExecContext::new();
        for shot in 0..8 {
            // Alternating engine kinds keeps both inner contexts warm;
            // results still match one-off execution.
            assert_eq!(dd.run_shot_in(&mut ctx, shot), dd.run_shot(shot));
            assert_eq!(dense.run_shot_in(&mut ctx, shot), dense.run_shot(shot));
        }
    }

    #[test]
    fn engines_share_across_threads() {
        let engine = ShotEngine::new(
            &ghz(5),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            9,
            OptLevel::O0,
        );
        let mut reference_ctx = engine.new_context();
        let sequential: Vec<u64> = (0..32)
            .map(|s| engine.run_shot_in(&mut reference_ctx, s).outcome)
            .collect();
        let mut concurrent = vec![0u64; 32];
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in concurrent.chunks_mut(8).enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    let mut ctx = engine.new_context();
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = engine
                            .run_shot_in(&mut ctx, (chunk_index * 8 + offset) as u64)
                            .outcome;
                    }
                });
            }
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn transpiled_engine_restores_original_qubit_order() {
        // qft ends in trailing SWAPs which O2 elides into a relabeling; the
        // engine must undo it so both engines sample the same distribution.
        let circuit = qft(3);
        let raw = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            3,
            OptLevel::O0,
        );
        let optimized = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            3,
            OptLevel::O2,
        );
        assert!(optimized.circuit().len() < raw.circuit().len());
        // Same seed, same shot index, but different circuits: outcomes need
        // not match shot-by-shot, yet both must stay within range and the
        // layout restoration must be exercised.
        let mut ctx = optimized.new_context();
        for shot in 0..64 {
            assert!(optimized.run_shot_in(&mut ctx, shot).outcome < 8);
        }
    }

    #[test]
    fn dense_backend_reports_zero_dd_nodes() {
        let engine = ShotEngine::new(
            &ghz(4),
            BackendKind::Statevector,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        let sample = engine.run_shot(0);
        assert_eq!(sample.dd_nodes, 0);
        assert_eq!(sample.dd_nodes_peak, 0);
        let dd = ShotEngine::new(
            &ghz(4),
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        let sample = dd.run_shot(0);
        assert!(sample.dd_nodes > 0);
        assert!(sample.dd_nodes_peak >= sample.dd_nodes);
    }

    #[test]
    fn map_observables_is_identity_without_layout() {
        let engine = ShotEngine::new(
            &ghz(3),
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            1,
            OptLevel::O0,
        );
        let observables = vec![Observable::QubitExcitation(2)];
        assert_eq!(engine.map_observables(&observables), observables);
    }
}
