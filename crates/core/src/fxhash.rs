//! Re-export of the workspace's shared FxHash definitions.
//!
//! The hasher is defined once, in [`qsdd_dd::fxhash`], where the hottest
//! maps live (unique tables, compute tables, the complex table); this
//! module re-exports it so the deduplication layer's pattern maps and the
//! `qsdd-server` content-addressed result cache keep hashing identically
//! to the diagram package — one definition, one set of collision
//! characteristics, instead of three drifting copies.

pub use qsdd_dd::fxhash::{FxBuildHasher, FxHasher};

pub(crate) use qsdd_dd::fxhash::FxHashMap;
