//! High-level facade over the back-ends and the Monte-Carlo runner.
//!
//! Most users interact with [`StochasticSimulator`]: pick a back-end, set
//! the shot count and noise model, and run circuits. The lower-level pieces
//! ([`crate::backend`], [`crate::stochastic`]) remain public for users who
//! need custom observables or their own aggregation.

use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;
use qsdd_transpile::{OptLevel, TranspileResult};

use crate::deadline::{Deadline, TimedOut};
use crate::estimator::Observable;
use crate::shot_engine::ShotEngine;
use crate::stochastic::{
    run_engine_deadline, run_engine_dedup_deadline, StochasticConfig, StochasticOutcome,
};

/// Which simulation engine executes the individual runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The decision-diagram engine proposed by the paper.
    #[default]
    DecisionDiagram,
    /// The dense statevector baseline (Qiskit/QLM stand-in).
    Statevector,
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    /// Parses the CLI/job-file spelling of a back-end (`dd` or `dense`).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "dd" | "decision-diagram" => Ok(BackendKind::DecisionDiagram),
            "dense" | "statevector" => Ok(BackendKind::Statevector),
            other => Err(format!("unknown backend `{other}` (expected dd|dense)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::DecisionDiagram => write!(f, "dd"),
            BackendKind::Statevector => write!(f, "dense"),
        }
    }
}

/// A ready-to-use stochastic noise-aware quantum circuit simulator.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::ghz;
/// use qsdd_core::StochasticSimulator;
/// use qsdd_noise::NoiseModel;
///
/// let simulator = StochasticSimulator::new()
///     .with_shots(256)
///     .with_noise(NoiseModel::paper_defaults())
///     .with_seed(1);
/// let result = simulator.run(&ghz(8));
/// // The two GHZ peaks dominate even under realistic noise.
/// let all_ones = (1u64 << 8) - 1;
/// assert!(result.frequency(0) + result.frequency(all_ones) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct StochasticSimulator {
    backend: BackendKind,
    config: StochasticConfig,
    opt_level: OptLevel,
}

impl StochasticSimulator {
    /// Creates a simulator with the decision-diagram back-end, the paper's
    /// noise model, 1024 shots and no circuit optimization.
    pub fn new() -> Self {
        StochasticSimulator {
            backend: BackendKind::DecisionDiagram,
            config: StochasticConfig::default(),
            opt_level: OptLevel::O0,
        }
    }

    /// Selects the back-end.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the number of stochastic runs.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.config.shots = shots;
        self
    }

    /// Sets the number of worker threads (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.config.noise = noise;
        self
    }

    /// Enables or disables trajectory deduplication (on by default).
    ///
    /// With deduplication, shots are presampled and grouped by error
    /// pattern and each distinct trajectory is simulated once (see
    /// [`crate::dedup`]); results are byte-identical either way, so
    /// disabling it is only useful for benchmarking the per-shot path.
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.config.dedup = dedup;
        self
    }

    /// Sets the intra-shot fork-join width (`1` = serial, the default).
    ///
    /// Each shot's diagram/dense operations split across this many pool
    /// workers (see [`qsdd_dd::IntraPool`]); the request is clamped against
    /// the shot-worker count so the two parallelism layers never
    /// oversubscribe the machine. Results are bit-identical for every
    /// setting.
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Self {
        self.config.intra_threads = intra_threads;
        self
    }

    /// Enables the weighted-enumeration driver (see [`crate::weighted`]):
    /// error patterns are enumerated in probability order and their exact
    /// outcome distributions weighted, with sampled shots covering only the
    /// residual mass. Falls back to the configured sampling path when the
    /// circuit does not support enumeration.
    pub fn with_weighted(mut self, options: crate::weighted::WeightedOptions) -> Self {
        self.config.weighted = Some(options);
        self
    }

    /// Sets the circuit-optimization level applied before the shot loop.
    ///
    /// The circuit is transpiled **once** (see [`qsdd_transpile`]); every
    /// stochastic run then executes the smaller circuit, so the savings
    /// multiply by the shot count. Results are reported in the original
    /// circuit's qubit order: outcomes and observables are remapped through
    /// the transpiler's output layout when trailing SWAPs were elided.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// The currently selected back-end.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The currently selected optimization level.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The current run configuration.
    pub fn config(&self) -> &StochasticConfig {
        &self.config
    }

    /// Runs the circuit and returns the aggregated measurement statistics.
    pub fn run(&self, circuit: &Circuit) -> StochasticOutcome {
        self.run_with_observables(circuit, &[])
    }

    /// Runs the circuit while additionally estimating the given quadratic
    /// observables (Section III of the paper).
    ///
    /// With an optimization level above [`OptLevel::O0`] the circuit is
    /// transpiled once before the shot loop; outcomes and observables are
    /// reported in the original circuit's qubit order regardless.
    pub fn run_with_observables(
        &self,
        circuit: &Circuit,
        observables: &[Observable],
    ) -> StochasticOutcome {
        self.drive_deadline(&self.engine(circuit), observables, &Deadline::unbounded())
            .expect("an unbounded deadline never expires")
    }

    /// [`Self::run_with_observables`] under a cooperative [`Deadline`]: the
    /// run bails out with [`TimedOut`] (no partial results) once the budget
    /// expires, checked at trajectory boundaries. Transpilation happens
    /// before the budget is consulted, so very short budgets still pay for
    /// the one-time compile.
    pub fn run_with_observables_deadline(
        &self,
        circuit: &Circuit,
        observables: &[Observable],
        deadline: &Deadline,
    ) -> Result<StochasticOutcome, TimedOut> {
        self.drive_deadline(&self.engine(circuit), observables, deadline)
    }

    /// Runs an already-transpiled circuit, remapping outcomes and
    /// observables through its output layout so results are reported in the
    /// *original* circuit's qubit order.
    ///
    /// Use this when the [`TranspileResult`] is needed anyway (e.g. to print
    /// its report) to avoid transpiling twice; [`Self::run_with_observables`]
    /// with an opt level is the convenience path that transpiles internally.
    pub fn run_transpiled(
        &self,
        transpiled: &TranspileResult,
        observables: &[Observable],
    ) -> StochasticOutcome {
        self.run_transpiled_deadline(transpiled, observables, &Deadline::unbounded())
            .expect("an unbounded deadline never expires")
    }

    /// [`Self::run_transpiled`] under a cooperative [`Deadline`] (see
    /// [`Self::run_with_observables_deadline`] for the timeout contract).
    pub fn run_transpiled_deadline(
        &self,
        transpiled: &TranspileResult,
        observables: &[Observable],
        deadline: &Deadline,
    ) -> Result<StochasticOutcome, TimedOut> {
        let engine = ShotEngine::from_transpiled(
            transpiled,
            self.backend,
            self.config.noise,
            self.config.seed,
        )
        .with_intra_threads(self.config.intra_threads);
        self.drive_deadline(&engine, observables, deadline)
    }

    /// Builds the re-entrant [`ShotEngine`] this simulator would execute
    /// `circuit` on (transpiling at the configured opt level).
    ///
    /// The engine is the shareable execution primitive: the batch scheduler
    /// pulls single shots from it, while [`Self::run`] drives it through the
    /// strided Monte-Carlo loop. Either way, shot `i` yields the same sample.
    pub fn engine(&self, circuit: &Circuit) -> ShotEngine {
        ShotEngine::new(
            circuit,
            self.backend,
            self.config.noise,
            self.config.seed,
            self.opt_level,
        )
        .with_intra_threads(self.config.intra_threads)
    }

    fn drive_deadline(
        &self,
        engine: &ShotEngine,
        observables: &[Observable],
        deadline: &Deadline,
    ) -> Result<StochasticOutcome, TimedOut> {
        if let Some(options) = &self.config.weighted {
            return crate::weighted::run_engine_weighted_deadline(
                engine,
                self.config.shots,
                self.config.threads,
                observables,
                options,
                deadline,
            );
        }
        if self.config.dedup {
            run_engine_dedup_deadline(
                engine,
                self.config.shots,
                self.config.threads,
                observables,
                deadline,
            )
        } else {
            run_engine_deadline(
                engine,
                self.config.shots,
                self.config.threads,
                observables,
                deadline,
            )
        }
    }
}

impl Default for StochasticSimulator {
    fn default() -> Self {
        StochasticSimulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};
    use qsdd_circuit::Circuit;

    #[test]
    fn facade_runs_both_backends() {
        let circuit = ghz(5);
        for backend in [BackendKind::DecisionDiagram, BackendKind::Statevector] {
            let simulator = StochasticSimulator::new()
                .with_backend(backend)
                .with_shots(100)
                .with_seed(2)
                .with_threads(2);
            let outcome = simulator.run(&circuit);
            assert_eq!(outcome.shots, 100);
            let total: u64 = outcome.counts.values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn qft_of_zero_state_gives_nearly_uniform_outcomes() {
        let simulator = StochasticSimulator::new()
            .with_shots(2000)
            .with_noise(NoiseModel::noiseless())
            .with_seed(3);
        let outcome = simulator.run(&qft(3));
        // Eight outcomes, each with probability 1/8.
        for index in 0..8u64 {
            let freq = outcome.frequency(index);
            assert!(
                (freq - 0.125).abs() < 0.05,
                "outcome {index} frequency {freq}"
            );
        }
    }

    #[test]
    fn observables_are_estimated_through_the_facade() {
        let simulator = StochasticSimulator::new()
            .with_shots(200)
            .with_noise(NoiseModel::noiseless())
            .with_seed(5);
        let outcome = simulator.run_with_observables(&ghz(4), &[Observable::QubitExcitation(0)]);
        assert!((outcome.observable_estimates[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn opt_levels_preserve_noiseless_statistics() {
        // qft(3) ends in a trailing swap that O2 elides, exercising the
        // outcome-remapping path end to end.
        let run = |level: OptLevel| {
            StochasticSimulator::new()
                .with_shots(2000)
                .with_noise(NoiseModel::noiseless())
                .with_seed(3)
                .with_opt_level(level)
                .run(&qft(3))
        };
        let baseline = run(OptLevel::O0);
        let optimized = run(OptLevel::O2);
        for index in 0..8u64 {
            let diff = (baseline.frequency(index) - optimized.frequency(index)).abs();
            assert!(diff < 0.05, "outcome {index} drifted by {diff}");
            assert!((optimized.frequency(index) - 0.125).abs() < 0.05);
        }
    }

    #[test]
    fn opt_level_remaps_observables_through_the_layout() {
        // Prepare |1> on qubit 1 only, then swap it onto qubit 2 at the very
        // end: O2 elides the swap and must still report qubit 2 as excited.
        let mut circuit = Circuit::new(3);
        circuit.x(1).swap(1, 2);
        let observables = [
            Observable::QubitExcitation(1),
            Observable::QubitExcitation(2),
            Observable::BasisProbability(0b001),
        ];
        for level in [OptLevel::O0, OptLevel::O2] {
            let outcome = StochasticSimulator::new()
                .with_shots(50)
                .with_noise(NoiseModel::noiseless())
                .with_seed(4)
                .with_opt_level(level)
                .run_with_observables(&circuit, &observables);
            assert!(
                (outcome.observable_estimates[0] - 0.0).abs() < 1e-9,
                "{level}"
            );
            assert!(
                (outcome.observable_estimates[1] - 1.0).abs() < 1e-9,
                "{level}"
            );
            assert!(
                (outcome.observable_estimates[2] - 1.0).abs() < 1e-9,
                "{level}"
            );
            assert!((outcome.frequency(0b001) - 1.0).abs() < 1e-12, "{level}");
        }
    }

    #[test]
    fn opt_level_accessor_round_trips() {
        let simulator = StochasticSimulator::new().with_opt_level(OptLevel::O1);
        assert_eq!(simulator.opt_level(), OptLevel::O1);
        assert_eq!(StochasticSimulator::new().opt_level(), OptLevel::O0);
    }

    #[test]
    fn expired_deadlines_time_out_every_driver() {
        use std::time::Duration;
        let circuit = ghz(5);
        let spent = Deadline::within(Duration::ZERO);
        for simulator in [
            StochasticSimulator::new().with_shots(200).with_seed(2),
            StochasticSimulator::new()
                .with_shots(200)
                .with_seed(2)
                .with_dedup(false),
            StochasticSimulator::new()
                .with_shots(200)
                .with_seed(2)
                .with_weighted(crate::weighted::WeightedOptions::default()),
        ] {
            let result = simulator.run_with_observables_deadline(&circuit, &[], &spent);
            assert_eq!(result.unwrap_err(), TimedOut);
        }
    }

    #[test]
    fn generous_deadlines_match_unbounded_runs_exactly() {
        use std::time::Duration;
        let circuit = ghz(6);
        let simulator = StochasticSimulator::new()
            .with_shots(300)
            .with_seed(7)
            .with_threads(2);
        let unbounded = simulator.run(&circuit);
        let bounded = simulator
            .run_with_observables_deadline(
                &circuit,
                &[],
                &Deadline::within(Duration::from_secs(600)),
            )
            .expect("a ten-minute budget outlives a 300-shot GHZ");
        assert_eq!(bounded.counts, unbounded.counts);
        assert_eq!(bounded.error_events, unbounded.error_events);
    }

    #[test]
    fn noise_spreads_probability_beyond_the_ideal_peaks() {
        let noiseless = StochasticSimulator::new()
            .with_shots(1500)
            .with_noise(NoiseModel::noiseless())
            .with_seed(8)
            .run(&ghz(10));
        let noisy = StochasticSimulator::new()
            .with_shots(1500)
            .with_noise(NoiseModel::new(0.01, 0.02, 0.01))
            .with_seed(8)
            .run(&ghz(10));
        let all_ones = (1u64 << 10) - 1;
        let ideal_mass = |o: &StochasticOutcome| o.frequency(0) + o.frequency(all_ones);
        assert!((ideal_mass(&noiseless) - 1.0).abs() < 1e-12);
        assert!(ideal_mass(&noisy) < ideal_mass(&noiseless));
    }
}
