//! High-level facade over the back-ends and the Monte-Carlo runner.
//!
//! Most users interact with [`StochasticSimulator`]: pick a back-end, set
//! the shot count and noise model, and run circuits. The lower-level pieces
//! ([`crate::backend`], [`crate::stochastic`]) remain public for users who
//! need custom observables or their own aggregation.

use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;

use crate::dd_backend::DdSimulator;
use crate::dense_backend::DenseSimulator;
use crate::estimator::Observable;
use crate::stochastic::{run_stochastic, StochasticConfig, StochasticOutcome};

/// Which simulation engine executes the individual runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The decision-diagram engine proposed by the paper.
    #[default]
    DecisionDiagram,
    /// The dense statevector baseline (Qiskit/QLM stand-in).
    Statevector,
}

/// A ready-to-use stochastic noise-aware quantum circuit simulator.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::ghz;
/// use qsdd_core::StochasticSimulator;
/// use qsdd_noise::NoiseModel;
///
/// let simulator = StochasticSimulator::new()
///     .with_shots(256)
///     .with_noise(NoiseModel::paper_defaults())
///     .with_seed(1);
/// let result = simulator.run(&ghz(8));
/// // The two GHZ peaks dominate even under realistic noise.
/// let all_ones = (1u64 << 8) - 1;
/// assert!(result.frequency(0) + result.frequency(all_ones) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct StochasticSimulator {
    backend: BackendKind,
    config: StochasticConfig,
}

impl StochasticSimulator {
    /// Creates a simulator with the decision-diagram back-end, the paper's
    /// noise model and 1024 shots.
    pub fn new() -> Self {
        StochasticSimulator {
            backend: BackendKind::DecisionDiagram,
            config: StochasticConfig::default(),
        }
    }

    /// Selects the back-end.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the number of stochastic runs.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.config.shots = shots;
        self
    }

    /// Sets the number of worker threads (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.config.noise = noise;
        self
    }

    /// The currently selected back-end.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The current run configuration.
    pub fn config(&self) -> &StochasticConfig {
        &self.config
    }

    /// Runs the circuit and returns the aggregated measurement statistics.
    pub fn run(&self, circuit: &Circuit) -> StochasticOutcome {
        self.run_with_observables(circuit, &[])
    }

    /// Runs the circuit while additionally estimating the given quadratic
    /// observables (Section III of the paper).
    pub fn run_with_observables(
        &self,
        circuit: &Circuit,
        observables: &[Observable],
    ) -> StochasticOutcome {
        match self.backend {
            BackendKind::DecisionDiagram => {
                run_stochastic(&DdSimulator::new(), circuit, &self.config, observables)
            }
            BackendKind::Statevector => {
                run_stochastic(&DenseSimulator::new(), circuit, &self.config, observables)
            }
        }
    }
}

impl Default for StochasticSimulator {
    fn default() -> Self {
        StochasticSimulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};

    #[test]
    fn facade_runs_both_backends() {
        let circuit = ghz(5);
        for backend in [BackendKind::DecisionDiagram, BackendKind::Statevector] {
            let simulator = StochasticSimulator::new()
                .with_backend(backend)
                .with_shots(100)
                .with_seed(2)
                .with_threads(2);
            let outcome = simulator.run(&circuit);
            assert_eq!(outcome.shots, 100);
            let total: u64 = outcome.counts.values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn qft_of_zero_state_gives_nearly_uniform_outcomes() {
        let simulator = StochasticSimulator::new()
            .with_shots(2000)
            .with_noise(NoiseModel::noiseless())
            .with_seed(3);
        let outcome = simulator.run(&qft(3));
        // Eight outcomes, each with probability 1/8.
        for index in 0..8u64 {
            let freq = outcome.frequency(index);
            assert!((freq - 0.125).abs() < 0.05, "outcome {index} frequency {freq}");
        }
    }

    #[test]
    fn observables_are_estimated_through_the_facade() {
        let simulator = StochasticSimulator::new()
            .with_shots(200)
            .with_noise(NoiseModel::noiseless())
            .with_seed(5);
        let outcome = simulator
            .run_with_observables(&ghz(4), &[Observable::QubitExcitation(0)]);
        assert!((outcome.observable_estimates[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noise_spreads_probability_beyond_the_ideal_peaks() {
        let noiseless = StochasticSimulator::new()
            .with_shots(1500)
            .with_noise(NoiseModel::noiseless())
            .with_seed(8)
            .run(&ghz(10));
        let noisy = StochasticSimulator::new()
            .with_shots(1500)
            .with_noise(NoiseModel::new(0.01, 0.02, 0.01))
            .with_seed(8)
            .run(&ghz(10));
        let all_ones = (1u64 << 10) - 1;
        let ideal_mass = |o: &StochasticOutcome| o.frequency(0) + o.frequency(all_ones);
        assert!((ideal_mass(&noiseless) - 1.0).abs() < 1e-12);
        assert!(ideal_mass(&noisy) < ideal_mass(&noiseless));
    }
}
