//! Quadratic observables and their Monte-Carlo estimation.
//!
//! Section III of the paper considers properties of the form
//! `o_l = |<omega_l | psi>|^2` (outcome probabilities, fidelities with
//! reference states, ...). A single stochastic run yields an unbiased sample
//! of such a property, and the empirical average over runs converges with
//! the Hoeffding rate quantified in Theorem 1 (see [`crate::sampling`]).

/// A quadratic property of the final state distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum Observable {
    /// The probability of observing the given computational basis state
    /// (`|<index|psi>|^2`).
    BasisProbability(u64),
    /// The probability that the given qubit is measured as `|1>`.
    QubitExcitation(usize),
    /// The fidelity `|<phi|psi>|^2` with an explicitly given reference state
    /// over the full register (amplitudes in basis order, qubit 0 is the
    /// most significant index bit).
    Fidelity(Vec<qsdd_dd::Complex>),
}

impl Observable {
    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            Observable::BasisProbability(idx) => format!("P(|{idx:b}>)"),
            Observable::QubitExcitation(q) => format!("P(q{q}=1)"),
            Observable::Fidelity(_) => "fidelity".to_string(),
        }
    }
}

/// Running mean of per-run observable samples.
#[derive(Clone, Debug, Default)]
pub struct ObservableAccumulator {
    sums: Vec<f64>,
    samples: u64,
}

impl ObservableAccumulator {
    /// Creates an accumulator for `count` observables.
    pub fn new(count: usize) -> Self {
        ObservableAccumulator {
            sums: vec![0.0; count],
            samples: 0,
        }
    }

    /// Adds the per-run samples (one value per observable).
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the accumulator width.
    pub fn add(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.sums.len(), "observable count mismatch");
        for (sum, v) in self.sums.iter_mut().zip(values) {
            *sum += v;
        }
        self.samples += 1;
    }

    /// Merges another accumulator into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &ObservableAccumulator) {
        assert_eq!(
            other.sums.len(),
            self.sums.len(),
            "observable count mismatch"
        );
        for (sum, v) in self.sums.iter_mut().zip(&other.sums) {
            *sum += v;
        }
        self.samples += other.samples;
    }

    /// Number of samples accumulated so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The empirical means (the Monte-Carlo estimates `o_hat_l`).
    pub fn means(&self) -> Vec<f64> {
        if self.samples == 0 {
            return vec![0.0; self.sums.len()];
        }
        self.sums.iter().map(|s| s / self.samples as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_averages_samples() {
        let mut acc = ObservableAccumulator::new(2);
        acc.add(&[1.0, 0.0]);
        acc.add(&[0.0, 1.0]);
        acc.add(&[1.0, 1.0]);
        let means = acc.means();
        assert!((means[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((means[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.samples(), 3);
    }

    #[test]
    fn merge_combines_partial_results() {
        let mut a = ObservableAccumulator::new(1);
        a.add(&[1.0]);
        let mut b = ObservableAccumulator::new(1);
        b.add(&[0.0]);
        b.add(&[0.0]);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert!((a.means()[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_reports_zero_means() {
        let acc = ObservableAccumulator::new(3);
        assert_eq!(acc.means(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Observable::BasisProbability(5).label(), "P(|101>)");
        assert_eq!(Observable::QubitExcitation(2).label(), "P(q2=1)");
    }

    #[test]
    #[should_panic(expected = "observable count mismatch")]
    fn mismatched_width_panics() {
        let mut acc = ObservableAccumulator::new(2);
        acc.add(&[1.0]);
    }
}
