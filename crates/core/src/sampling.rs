//! Sample-complexity bounds (Theorem 1 of the paper).
//!
//! Theorem 1: to estimate `L` quadratic properties to accuracy `epsilon`
//! with confidence `1 - delta`, `M = log(2L / delta) / (2 epsilon^2)`
//! independent stochastic runs suffice. The bound follows from Hoeffding's
//! inequality plus a union bound over the `L` targets; it is independent of
//! the system size, which is what makes the Monte-Carlo approach scale.

/// Number of samples sufficient to estimate `num_properties` quadratic
/// properties to additive accuracy `epsilon` with confidence `1 - delta`
/// (Theorem 1).
///
/// # Panics
///
/// Panics unless `num_properties >= 1`, `0 < epsilon < 1` and
/// `0 < delta < 1`.
///
/// # Examples
///
/// ```
/// use qsdd_core::sampling::required_samples;
///
/// // The paper's configuration: 1000 properties, error < 0.01, 95 % confidence
/// // needs about 30 000 samples.
/// let m = required_samples(1000, 0.013, 0.05);
/// assert!(m >= 29_000 && m <= 32_000);
/// ```
pub fn required_samples(num_properties: usize, epsilon: f64, delta: f64) -> usize {
    assert!(num_properties >= 1, "need at least one property");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let l = num_properties as f64;
    ((2.0 * l / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// The Hoeffding failure probability `2 exp(-2 M epsilon^2)` for a single
/// property estimated from `samples` runs.
pub fn hoeffding_failure_probability(samples: usize, epsilon: f64) -> f64 {
    2.0 * (-2.0 * samples as f64 * epsilon * epsilon).exp()
}

/// The accuracy `epsilon` guaranteed (with confidence `1 - delta` across
/// `num_properties` properties) by a given number of samples — the inverse
/// of [`required_samples`].
pub fn achievable_epsilon(samples: usize, num_properties: usize, delta: f64) -> f64 {
    assert!(samples >= 1, "need at least one sample");
    assert!(num_properties >= 1, "need at least one property");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    ((2.0 * num_properties as f64 / delta).ln() / (2.0 * samples as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_properties_need_only_logarithmically_more_samples() {
        let base = required_samples(1, 0.01, 0.05);
        let thousand = required_samples(1000, 0.01, 0.05);
        let million = required_samples(1_000_000, 0.01, 0.05);
        assert!(thousand > base);
        assert!(million > thousand);
        // Logarithmic growth: going from 1 to a million properties costs less
        // than a 5x increase in samples (ln(4e7)/ln(40) is about 4.7).
        assert!((million as f64) < 5.0 * base as f64);
    }

    #[test]
    fn samples_scale_inverse_quadratically_in_epsilon() {
        let coarse = required_samples(10, 0.1, 0.05);
        let fine = required_samples(10, 0.01, 0.05);
        let ratio = fine as f64 / coarse as f64;
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn round_trip_between_samples_and_epsilon() {
        let eps = 0.02;
        let m = required_samples(50, eps, 0.1);
        let achieved = achievable_epsilon(m, 50, 0.1);
        assert!(achieved <= eps + 1e-9);
        assert!(achieved > eps * 0.95);
    }

    #[test]
    fn hoeffding_probability_decreases_with_samples() {
        let few = hoeffding_failure_probability(100, 0.05);
        let many = hoeffding_failure_probability(10_000, 0.05);
        assert!(many < few);
        assert!(many < 1e-20);
    }

    #[test]
    fn paper_configuration_is_about_thirty_thousand() {
        // Section V: "a total of M = 30,000 iterations ... corresponds to
        // tracking 1000 properties with an error margin of < 0.01 and a
        // confidence of 95%". The bound with exactly eps = 0.013 gives ~31k.
        let m = required_samples(1000, 0.0129, 0.05);
        assert!((29_000..=32_000).contains(&m), "m = {m}");
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn invalid_epsilon_panics() {
        let _ = required_samples(10, 1.5, 0.05);
    }
}
