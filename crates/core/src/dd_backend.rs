//! The decision-diagram back-end: the paper's proposed simulator.
//!
//! The back-end follows the two-phase architecture of
//! [`StochasticBackend`]: [`DdSimulator::compile`] builds every operator
//! diagram a shot can possibly need — one (controlled) gate diagram per
//! circuit operation, a swap diagram per SWAP, the Pauli-X diagram behind
//! every reset, and the noise channels' error operators for every touched
//! qubit — into the **persistent region** of a template [`DdPackage`].
//! [`DdSimulator::run_shot`] then replays the compiled step list against a
//! per-worker [`DdContext`], whose package is rewound to the persistent
//! watermark between shots ([`DdPackage::reset_transient`]) instead of being
//! rebuilt. Stochastic error events are injected after every gate on every
//! touched qubit, exactly as described in Sections III and IV of the paper;
//! because the rewound package is indistinguishable from a fresh clone of
//! the template, a reused context produces bit-identical shots.

use qsdd_circuit::{Circuit, Operation};
use qsdd_dd::{DdPackage, MatEdge, Matrix2, VecEdge};
use qsdd_noise::{
    ErrorChannel, ErrorPattern, NoiseModel, PresamplePlan, SampledError, SiteChannel,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::backend::{next_program_id, pack_clbits, SingleRun, StochasticBackend};
use crate::dedup::DedupSupport;
use crate::estimator::Observable;

/// A self-contained noiseless simulation result: the package owning the
/// diagram and the edge of the final state.
#[derive(Debug)]
pub struct DdRunState {
    /// The package owning every node of the run.
    pub package: DdPackage,
    /// Root edge of the final state.
    pub state: VecEdge,
    /// Number of qubits of the simulated circuit.
    pub num_qubits: usize,
}

impl DdRunState {
    /// Size of the final state's decision diagram (number of nodes).
    pub fn node_count(&self) -> usize {
        self.package.vec_node_count(self.state)
    }
}

/// One executable step of a compiled decision-diagram program.
#[derive(Clone, Debug)]
enum DdStep {
    /// Apply a precompiled unitary (gate or swap), then expose the listed
    /// qubits to the noise channels.
    Apply {
        op: MatEdge,
        /// Qubits touched by the operation, in the order the stochastic
        /// noise protocol visits them (controls before target; swap
        /// operands in declaration order). Empty when the program is
        /// noiseless.
        noise_qubits: Vec<usize>,
    },
    /// Projective measurement into a classical bit.
    Measure { qubit: usize, clbit: usize },
    /// Reset to `|0>`: measure, then apply the precompiled X on outcome 1.
    Reset { qubit: usize, x_op: MatEdge },
}

/// The per-qubit precompiled error operators of one noise channel.
#[derive(Clone, Debug)]
struct ChannelOps {
    /// `unitaries[qubit][i]` is the diagram of the channel's `i`-th unitary
    /// error on `qubit` (see [`ErrorChannel::unitaries`]); empty for qubits
    /// no unitary step touches.
    unitaries: Vec<Vec<MatEdge>>,
    /// `kraus[qubit]` is the `[decay, keep]` diagram pair for Kraus
    /// channels, `None` for unitary-equivalent channels or untouched
    /// qubits.
    kraus: Vec<Option<[MatEdge; 2]>>,
}

/// One precomputed noise exposure along the no-error trajectory.
#[derive(Clone, Debug)]
struct ExposureFF {
    qubit: usize,
    channel: usize,
    /// The state entering this exposure (an edge into the persistent
    /// region) — the point live evolution resumes from if the exposure
    /// deviates.
    before: VecEdge,
    kind: FFKind,
}

#[derive(Clone, Copy, Debug)]
enum FFKind {
    /// Unitary-equivalent channel (depolarizing, phase flip): the state is
    /// unchanged unless an error fires.
    Passive,
    /// Amplitude damping: the channel applies on every exposure, but along
    /// the no-decay path both the branch threshold and the renormalised
    /// keep state are deterministic, so they are precomputed.
    Damping { p_decay: f64 },
}

/// Fast-forward data for one step of the no-error trajectory.
#[derive(Clone, Debug)]
struct StepFF {
    /// The step's noise exposures, flattened in protocol order
    /// (qubit-major, channels in model order).
    exposures: Vec<ExposureFF>,
    /// The state after the whole step when nothing deviated.
    after: VecEdge,
    /// Node count of `after`, precomputed for O(1) peak tracking.
    nodes_after: u64,
}

/// Maximum number of vector nodes the template package may hold while the
/// no-error trajectory is being recorded; past this budget the remaining
/// steps are left to live execution. Bounds the persistent memory a
/// program (and thus every worker context seated on it) can pin — the
/// recorded region includes the damping-probe states evaluated for the
/// branch thresholds, so the budget caps those too.
const TRAJECTORY_NODE_BUDGET: usize = 1 << 19;

/// A compiled circuit + noise model pair for the decision-diagram back-end.
///
/// Holds the resolved step list, the noise-channel operator tables, the
/// precomputed **no-error trajectory** and the template package whose
/// persistent region owns every precompiled diagram (including the
/// trajectory states). Programs are immutable and shared across worker
/// threads; each worker's [`DdContext`] carries its own copy of the
/// template.
///
/// # The no-error trajectory
///
/// With realistic error rates almost every exposure of almost every shot
/// samples "no error", and the state along that path is fully
/// deterministic — including the amplitude-damping branch thresholds and
/// renormalised keep states (the channel is state-dependent, but the state
/// is known). Compilation therefore simulates the error-free path once and
/// records, per step, the resulting state and its node count, and per
/// exposure, the resume state and decay threshold. At shot time the
/// executor replays this trajectory with zero diagram work — consuming the
/// random number stream exactly as live execution would — and drops to
/// live evolution only at the first deviation (an error fires, or a
/// measurement/reset is reached). Recording stops once the template
/// package exceeds a node budget, so programs for circuits with large
/// noise-free states stay memory-bounded (the tail of such circuits just
/// runs live).
#[derive(Clone, Debug)]
pub struct DdProgram {
    id: u64,
    num_qubits: usize,
    num_clbits: usize,
    /// Whether the circuit contains explicit measurements (then the outcome
    /// packs the classical register instead of sampling the final state).
    measured_any: bool,
    steps: Vec<DdStep>,
    channels: Vec<ErrorChannel>,
    noise_ops: Vec<ChannelOps>,
    /// Fast-forward data for the leading run of unitary steps (the
    /// trajectory ends at the first measurement or reset).
    trajectory: Vec<StepFF>,
    /// Number of leading steps whose error decisions can be presampled (the
    /// deduplicable prefix): unitary steps only, and — when a
    /// state-dependent channel is present — only steps whose damping
    /// thresholds the trajectory precomputed.
    dedup_prefix: usize,
    /// The `|0...0>` initial state, prebuilt in the persistent region.
    initial: VecEdge,
    /// Node count of the initial state.
    initial_nodes: u64,
    /// The template package: persistent region = all precompiled diagrams.
    base: DdPackage,
}

impl DdProgram {
    /// Number of qubits of the compiled circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of executable steps (barriers are compiled away).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of leading steps covered by the precomputed no-error
    /// trajectory (the fast-forward path).
    pub fn trajectory_steps(&self) -> usize {
        self.trajectory.len()
    }

    /// Number of leading steps whose error decisions can be presampled —
    /// the region trajectory deduplication replays per distinct pattern
    /// (see [`crate::dedup`]).
    pub fn dedup_prefix_steps(&self) -> usize {
        self.dedup_prefix
    }

    /// Number of nodes in the persistent region of the template package
    /// (all precompiled operator diagrams combined).
    pub fn persistent_mat_nodes(&self) -> usize {
        self.base.stats().mat_nodes
    }
}

/// A reusable per-worker execution context for the decision-diagram
/// back-end.
///
/// The context owns one [`DdPackage`]. When asked to run a shot of the
/// program it is already seated on, the package is rewound to the program's
/// persistent watermark — an O(transient) truncation. When handed a
/// different program, it re-seats by copying that program's template into
/// its existing allocations. Either way the package state at shot entry is
/// exactly the compiled template, which is what makes context reuse
/// unobservable in the results.
#[derive(Clone, Debug)]
pub struct DdContext {
    package: DdPackage,
    /// Id of the program the package currently mirrors (`0` = unseated).
    seated: u64,
    /// Memoised outcome-sampling plan for the most recent pattern run's
    /// final state (trajectory groups fan many samples out of one state;
    /// the flat plan replaces per-sample norm recursion). Invalidated on
    /// every seat/rewind, and keyed by the state edge it was built from.
    sampler: Option<(VecEdge, qsdd_dd::SamplePlan)>,
}

impl DdContext {
    /// Creates an unseated context.
    pub fn new() -> Self {
        DdContext {
            package: DdPackage::new(),
            seated: 0,
            sampler: None,
        }
    }

    /// Rewinds (same program) or re-seats (program switch) the package so
    /// it equals `program`'s template exactly.
    fn seat(&mut self, program: &DdProgram) {
        self.sampler = None;
        if self.seated == program.id {
            self.package.reset_transient();
        } else {
            self.package.clone_from(&program.base);
            self.seated = program.id;
        }
    }

    /// Installs (or clears) a fork-join pool on the context's package:
    /// subsequent diagram operations split their cofactor recursions
    /// across the pool (see [`qsdd_dd::IntraPool`]). Results stay
    /// bit-identical to serial execution.
    pub fn set_intra_pool(&mut self, pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>) {
        self.package.set_intra_pool(pool);
    }

    /// Read access to the context's package (e.g. to inspect statistics).
    pub fn package(&self) -> &DdPackage {
        &self.package
    }

    /// Consumes the context, handing out the owned package.
    pub fn into_package(self) -> DdPackage {
        self.package
    }
}

impl Default for DdContext {
    fn default() -> Self {
        DdContext::new()
    }
}

/// The decision-diagram simulator back-end (the "Proposed" column of
/// Table I).
#[derive(Clone, Copy, Debug, Default)]
pub struct DdSimulator {
    caching: bool,
}

impl DdSimulator {
    /// Creates a back-end with operation caching enabled.
    pub fn new() -> Self {
        DdSimulator { caching: true }
    }

    /// Creates a back-end with operation caching disabled (ablation only).
    pub fn without_caching() -> Self {
        DdSimulator { caching: false }
    }

    /// Runs a circuit without noise and returns the final decision diagram.
    ///
    /// This is the deterministic simulation primitive; it is also used by
    /// the examples to inspect decision diagram sizes.
    pub fn simulate_noiseless(&self, circuit: &Circuit) -> DdRunState {
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let noiseless = NoiseModel::noiseless();
        let program = self.compile(circuit, &noiseless);
        let mut ctx = DdContext::new();
        let run = self.run_shot(&program, &mut ctx, &mut rng);
        DdRunState {
            package: ctx.into_package(),
            state: run.state,
            num_qubits: program.num_qubits,
        }
    }
}

impl StochasticBackend for DdSimulator {
    /// Root edge of the final state; the nodes live in the context's
    /// package.
    type State = VecEdge;
    type Program = DdProgram;
    type Context = DdContext;

    fn name(&self) -> &'static str {
        "decision-diagram"
    }

    fn compile(&self, circuit: &Circuit, noise: &NoiseModel) -> DdProgram {
        let n = circuit.num_qubits();
        let mut base = DdPackage::new();
        base.set_caching(self.caching);
        let initial = base.zero_state(n);
        let channels = noise.channels();
        let mut steps = Vec::with_capacity(circuit.len());
        let mut measured_any = false;
        let mut touched = vec![false; n];

        // Operator diagrams are built in circuit order; hash-consing in the
        // template package shares structure between repeated gates for free.
        for op in circuit {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => {
                    let m = gate
                        .matrix()
                        .expect("non-swap gates always provide a matrix");
                    let op_dd = base.controlled_op(n, *target, controls, m);
                    let noise_qubits = if channels.is_empty() {
                        Vec::new()
                    } else {
                        op.qubits()
                    };
                    for &q in &noise_qubits {
                        touched[q] = true;
                    }
                    steps.push(DdStep::Apply {
                        op: op_dd,
                        noise_qubits,
                    });
                }
                Operation::Swap { a, b } => {
                    let op_dd = base.swap_op(n, *a, *b);
                    let noise_qubits = if channels.is_empty() {
                        Vec::new()
                    } else {
                        op.qubits()
                    };
                    for &q in &noise_qubits {
                        touched[q] = true;
                    }
                    steps.push(DdStep::Apply {
                        op: op_dd,
                        noise_qubits,
                    });
                }
                Operation::Measure { qubit, clbit } => {
                    measured_any = true;
                    steps.push(DdStep::Measure {
                        qubit: *qubit,
                        clbit: *clbit,
                    });
                }
                Operation::Reset { qubit } => {
                    let x_op = base.single_qubit_op(n, *qubit, Matrix2::pauli_x());
                    steps.push(DdStep::Reset {
                        qubit: *qubit,
                        x_op,
                    });
                }
                Operation::Barrier => {}
            }
        }

        // Error operators, resolved once per (channel, touched qubit).
        let mut noise_ops = Vec::with_capacity(channels.len());
        for channel in &channels {
            let unitary_mats = channel.unitaries();
            let kraus_mats = channel.kraus_branches();
            let mut unitaries = vec![Vec::new(); n];
            let mut kraus = vec![None; n];
            for (q, q_touched) in touched.iter().enumerate() {
                if !q_touched {
                    continue;
                }
                unitaries[q] = unitary_mats
                    .iter()
                    .map(|m| base.single_qubit_op(n, q, *m))
                    .collect();
                kraus[q] = kraus_mats.map(|[decay, keep]| {
                    [
                        base.single_qubit_op(n, q, decay),
                        base.single_qubit_op(n, q, keep),
                    ]
                });
            }
            noise_ops.push(ChannelOps { unitaries, kraus });
        }

        // Simulate the no-error path once, recording per-step resume states
        // and damping thresholds (see the [`DdProgram`] docs). Everything
        // interned here lands in the persistent region, so the recorded
        // edges stay valid across every transient reset.
        let mut trajectory = Vec::new();
        let mut state = initial;
        for step in &steps {
            // The trajectory pins every recorded intermediate state into
            // the persistent region, which each worker context copies once.
            // For circuits whose noise-free states grow large this would
            // trade unbounded memory for speed, so recording stops at a
            // node budget and the remaining steps simply execute live.
            if base.stats().vec_nodes > TRAJECTORY_NODE_BUDGET {
                break;
            }
            let DdStep::Apply { op, noise_qubits } = step else {
                // Measurements and resets consume randomness; the
                // deterministic trajectory ends here.
                break;
            };
            state = base.mat_vec_mul(*op, state);
            let mut exposures = Vec::with_capacity(noise_qubits.len() * channels.len());
            for &qubit in noise_qubits {
                for (channel, ops) in noise_ops.iter().enumerate() {
                    let before = state;
                    match ops.kraus[qubit] {
                        Some([decay, keep]) => {
                            let (p_decay, _decayed) = base.apply_kraus(decay, state);
                            let (_, kept) = base.apply_kraus(keep, state);
                            state = kept;
                            exposures.push(ExposureFF {
                                qubit,
                                channel,
                                before,
                                kind: FFKind::Damping { p_decay },
                            });
                        }
                        None => exposures.push(ExposureFF {
                            qubit,
                            channel,
                            before,
                            kind: FFKind::Passive,
                        }),
                    }
                }
            }
            let nodes_after = base.vec_node_count_fast(state) as u64;
            trajectory.push(StepFF {
                exposures,
                after: state,
                nodes_after,
            });
        }
        let initial_nodes = base.vec_node_count_fast(initial) as u64;

        // The deduplicable prefix: unitary steps up to the first
        // measurement/reset; state-dependent (damping) channels additionally
        // cap it at the trajectory coverage, because only the trajectory
        // knows their branch thresholds in advance.
        let first_nonapply = steps
            .iter()
            .position(|step| !matches!(step, DdStep::Apply { .. }))
            .unwrap_or(steps.len());
        let dedup_prefix = if channels.iter().any(ErrorChannel::state_dependent) {
            first_nonapply.min(trajectory.len())
        } else {
            first_nonapply
        };

        base.mark_persistent();
        DdProgram {
            id: next_program_id(),
            num_qubits: n,
            num_clbits: circuit.num_clbits(),
            measured_any,
            steps,
            channels,
            noise_ops,
            trajectory,
            dedup_prefix,
            initial,
            initial_nodes,
            base,
        }
    }

    fn new_context(&self) -> DdContext {
        DdContext::new()
    }

    fn set_intra_pool(
        &self,
        ctx: &mut DdContext,
        pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>,
    ) {
        ctx.set_intra_pool(pool);
    }

    fn run_shot(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        rng: &mut StdRng,
    ) -> SingleRun<VecEdge> {
        ctx.seat(program);
        let dd = &mut ctx.package;
        let mut state = program.initial;
        let mut clbits = vec![false; program.num_clbits];
        let mut error_events = 0usize;
        let mut peak = program.initial_nodes;
        // `false` while the shot is still on the precomputed no-error
        // trajectory; flips to `true` at the first deviation.
        let mut live = false;

        for (index, step) in program.steps.iter().enumerate() {
            if !live {
                match program.trajectory.get(index) {
                    Some(ff) => {
                        match fast_forward_step(program, ff, dd, rng, &mut error_events) {
                            FastForward::Clean => {
                                state = ff.after;
                                peak = peak.max(ff.nodes_after);
                                continue;
                            }
                            FastForward::Deviated {
                                state: deviated,
                                resume_at,
                            } => {
                                // Finish the step's remaining exposures
                                // live, then stay live for the rest of the
                                // shot.
                                live = true;
                                let DdStep::Apply { noise_qubits, .. } = step else {
                                    unreachable!("the trajectory only covers Apply steps")
                                };
                                state = apply_noise_live(
                                    program,
                                    dd,
                                    noise_qubits,
                                    resume_at,
                                    deviated,
                                    rng,
                                    &mut error_events,
                                );
                                peak = peak.max(dd.vec_node_count_fast(state) as u64);
                                continue;
                            }
                        }
                    }
                    // The trajectory ended (measurement/reset ahead):
                    // everything from here on runs live.
                    None => live = true,
                }
            }
            match step {
                DdStep::Apply { op, noise_qubits } => {
                    state = dd.mat_vec_mul(*op, state);
                    state = apply_noise_live(
                        program,
                        dd,
                        noise_qubits,
                        0,
                        state,
                        rng,
                        &mut error_events,
                    );
                }
                DdStep::Measure { qubit, clbit } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    clbits[*clbit] = outcome;
                }
                DdStep::Reset { qubit, x_op } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    if outcome {
                        state = dd.mat_vec_mul(*x_op, state);
                    }
                }
            }
            peak = peak.max(dd.vec_node_count_fast(state) as u64);
        }

        let outcome = if program.measured_any {
            pack_clbits(&clbits)
        } else {
            dd.sample_measurement(state, program.num_qubits, rng)
        };
        let dd_nodes = dd.vec_node_count_fast(state) as u64;
        SingleRun {
            outcome,
            clbits,
            error_events,
            dd_nodes,
            dd_nodes_peak: peak.max(dd_nodes),
            state,
        }
    }

    fn evaluate(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        run: &mut SingleRun<VecEdge>,
        observable: &Observable,
    ) -> f64 {
        debug_assert_eq!(
            ctx.seated, program.id,
            "evaluate must use the context the run executed in"
        );
        let package = &mut ctx.package;
        let state = run.state;
        match observable {
            Observable::BasisProbability(index) => package
                .amplitude(state, program.num_qubits, *index)
                .norm_sqr(),
            Observable::QubitExcitation(qubit) => package.probability_one(state, *qubit),
            Observable::Fidelity(reference) => {
                let reference_edge = package.from_statevector(reference);
                package.fidelity(reference_edge, state)
            }
        }
    }

    fn dedup_support(&self, program: &DdProgram) -> Option<DedupSupport> {
        let prefix = program.dedup_prefix;
        let full = prefix == program.steps.len();
        // Prefix deduplication pays a per-member checkpoint clone; only
        // offer it when the saved prefix is at least half the program.
        if !full && (prefix == 0 || prefix * 2 < program.steps.len()) {
            return None;
        }
        let mut sites = Vec::new();
        for (index, step) in program.steps[..prefix].iter().enumerate() {
            match program.trajectory.get(index) {
                // Trajectory-covered steps carry per-exposure kinds,
                // including the precomputed damping thresholds.
                Some(ff) => sites.extend(ff.exposures.iter().map(|exposure| match exposure.kind {
                    FFKind::Passive => SiteChannel::Passive(program.channels[exposure.channel]),
                    FFKind::Damping { p_decay } => SiteChannel::Damping { p_decay },
                })),
                // Beyond the trajectory the prefix only extends when every
                // channel is state-independent (see `compile`).
                None => {
                    let DdStep::Apply { noise_qubits, .. } = step else {
                        unreachable!("the dedup prefix only contains Apply steps")
                    };
                    for _ in noise_qubits {
                        sites.extend(program.channels.iter().copied().map(SiteChannel::Passive));
                    }
                }
            }
        }
        Some(DedupSupport {
            plan: PresamplePlan::new(sites),
            prefix_steps: prefix,
            full,
        })
    }

    fn run_pattern(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        pattern: &ErrorPattern,
    ) -> SingleRun<VecEdge> {
        ctx.seat(program);
        let dd = &mut ctx.package;
        let width = program.channels.len();
        let events = pattern.events();
        let mut next = 0usize;
        let mut state = program.initial;
        let mut peak = program.initial_nodes;
        let mut site = 0u32;
        // `false` while the replay is still on the precomputed no-error
        // trajectory; flips to `true` at the first pattern event (mirroring
        // `run_shot`, so the operator sequence — and thus the resulting
        // package state — is identical to what any member shot would have
        // produced).
        let mut live = false;

        for (index, step) in program.steps[..program.dedup_prefix].iter().enumerate() {
            let DdStep::Apply { op, noise_qubits } = step else {
                unreachable!("the dedup prefix only contains Apply steps")
            };
            let step_end = site + (noise_qubits.len() * width) as u32;
            if !live {
                if let Some(ff) = program.trajectory.get(index) {
                    if next < events.len() && events[next].site < step_end {
                        // First deviation: apply the error onto the
                        // exposure's precomputed resume state, then finish
                        // the step's remaining events live.
                        let event = events[next];
                        let exposure = &ff.exposures[(event.site - site) as usize];
                        let err = program.noise_ops[exposure.channel].unitaries[exposure.qubit]
                            [event.error as usize];
                        state = dd.mat_vec_mul(err, exposure.before);
                        next += 1;
                        live = true;
                        state = apply_pattern_events(
                            program,
                            dd,
                            noise_qubits,
                            site,
                            step_end,
                            events,
                            &mut next,
                            state,
                        );
                        peak = peak.max(dd.vec_node_count_fast(state) as u64);
                    } else {
                        state = ff.after;
                        peak = peak.max(ff.nodes_after);
                    }
                    site = step_end;
                    continue;
                }
                // The trajectory ended (node budget): the rest of the
                // prefix replays live.
                live = true;
            }
            state = dd.mat_vec_mul(*op, state);
            state = apply_pattern_events(
                program,
                dd,
                noise_qubits,
                site,
                step_end,
                events,
                &mut next,
                state,
            );
            peak = peak.max(dd.vec_node_count_fast(state) as u64);
            site = step_end;
        }
        debug_assert_eq!(next, events.len(), "pattern events beyond the prefix");

        let dd_nodes = dd.vec_node_count_fast(state) as u64;
        SingleRun {
            // Each member samples its own outcome; the replay has none.
            outcome: 0,
            clbits: vec![false; program.num_clbits],
            error_events: events.len(),
            dd_nodes,
            dd_nodes_peak: peak.max(dd_nodes),
            state,
        }
    }

    fn sample_outcome(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        run: &SingleRun<VecEdge>,
        rng: &mut StdRng,
    ) -> u64 {
        debug_assert_eq!(
            ctx.seated, program.id,
            "sample_outcome must use the context the pattern ran in"
        );
        // Full-program patterns never contain explicit measurements (a
        // measurement ends the deduplicable prefix), so the outcome is
        // always a full-register sample of the shared final state. The
        // flat sampling plan is built once per pattern run (the `seat`
        // inside `run_pattern` invalidates it) and is bit-identical to
        // `sample_measurement` on the same state.
        let cached = ctx
            .sampler
            .as_ref()
            .is_some_and(|(state, _)| *state == run.state);
        if !cached {
            let plan = ctx.package.sample_plan(run.state, program.num_qubits);
            ctx.sampler = Some((run.state, plan));
        }
        let (_, plan) = ctx.sampler.as_ref().expect("plan was just installed");
        plan.sample(rng)
    }

    fn sample_outcomes(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        run: &SingleRun<VecEdge>,
        shots: &mut [(u64, StdRng)],
        mut sink: impl FnMut(u64, u64),
    ) {
        debug_assert_eq!(
            ctx.seated, program.id,
            "sample_outcomes must use the context the pattern ran in"
        );
        // Build the flat plan once and keep it out of the member loop —
        // this loop fans a whole trajectory group out of one shared state,
        // so it is the hottest loop of a deduplicated run.
        let plan = ctx.package.sample_plan(run.state, program.num_qubits);
        for (shot, rng) in shots.iter_mut() {
            sink(*shot, plan.sample(rng));
        }
        ctx.sampler = Some((run.state, plan));
    }

    fn outcome_distribution(
        &self,
        program: &DdProgram,
        ctx: &mut DdContext,
        run: &SingleRun<VecEdge>,
        sink: &mut dyn FnMut(u64, f64),
    ) {
        debug_assert_eq!(
            ctx.seated, program.id,
            "outcome_distribution must use the context the pattern ran in"
        );
        // Sparse DFS over the diagram: basis states outside the state's
        // support are never visited, so the cost tracks the diagram size,
        // not 2^n. Same outcome convention as `sample_outcome` (the full
        // register, qubit 0 as the most significant bit).
        ctx.package
            .outcome_probabilities(run.state, program.num_qubits, sink);
    }

    fn resume_pattern(
        &self,
        program: &DdProgram,
        checkpoint: &DdContext,
        prefix: &SingleRun<VecEdge>,
        work: &mut DdContext,
        rng: &mut StdRng,
    ) -> SingleRun<VecEdge> {
        debug_assert_eq!(
            checkpoint.seated, program.id,
            "resume_pattern must be given the context the pattern ran in"
        );
        // Seed the working context with the checkpointed prefix state. When
        // the pattern created no diagram content (the empty pattern riding
        // the precomputed trajectory), the checkpoint equals the program
        // template and the cheap seat/rewind path replaces the full
        // package clone. Either way the working package is
        // indistinguishable from the one a per-shot execution would hold
        // at this point, which keeps the resumed tail byte-identical.
        if checkpoint.package.transient_is_empty() {
            work.seat(program);
        } else {
            work.package.clone_from(&checkpoint.package);
            // The cloned persistent region is the program's template, so
            // the ordinary rewind contract keeps holding for this context.
            work.seated = program.id;
        }
        let dd = &mut work.package;
        let mut state = prefix.state;
        let mut clbits = vec![false; program.num_clbits];
        let mut error_events = prefix.error_events;
        let mut peak = prefix.dd_nodes_peak;

        for step in &program.steps[program.dedup_prefix..] {
            match step {
                DdStep::Apply { op, noise_qubits } => {
                    state = dd.mat_vec_mul(*op, state);
                    state = apply_noise_live(
                        program,
                        dd,
                        noise_qubits,
                        0,
                        state,
                        rng,
                        &mut error_events,
                    );
                }
                DdStep::Measure { qubit, clbit } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    clbits[*clbit] = outcome;
                }
                DdStep::Reset { qubit, x_op } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    if outcome {
                        state = dd.mat_vec_mul(*x_op, state);
                    }
                }
            }
            peak = peak.max(dd.vec_node_count_fast(state) as u64);
        }

        let outcome = if program.measured_any {
            pack_clbits(&clbits)
        } else {
            dd.sample_measurement(state, program.num_qubits, rng)
        };
        let dd_nodes = dd.vec_node_count_fast(state) as u64;
        SingleRun {
            outcome,
            clbits,
            error_events,
            dd_nodes,
            dd_nodes_peak: peak.max(dd_nodes),
            state,
        }
    }
}

/// Applies the remaining pattern events of one step (sites in
/// `[step_start, step_end)`, starting at `events[*next]`) by live diagram
/// evolution, mirroring the decisions `apply_noise_live` would sample.
#[allow(clippy::too_many_arguments)]
fn apply_pattern_events(
    program: &DdProgram,
    dd: &mut DdPackage,
    noise_qubits: &[usize],
    step_start: u32,
    step_end: u32,
    events: &[qsdd_noise::ErrorEvent],
    next: &mut usize,
    mut state: VecEdge,
) -> VecEdge {
    let width = program.channels.len();
    while *next < events.len() && events[*next].site < step_end {
        let event = events[*next];
        debug_assert!(event.site >= step_start, "events are consumed in order");
        let position = (event.site - step_start) as usize;
        let qubit = noise_qubits[position / width];
        let channel = position % width;
        let err = program.noise_ops[channel].unitaries[qubit][event.error as usize];
        state = dd.mat_vec_mul(err, state);
        *next += 1;
    }
    state
}

/// Result of replaying one trajectory step against the random stream.
enum FastForward {
    /// No exposure deviated: the step's precomputed outcome stands.
    Clean,
    /// An error fired at exposure `resume_at - 1`; `state` is the
    /// post-error state and the caller must run the remaining exposures
    /// (from `resume_at`) live.
    Deviated { state: VecEdge, resume_at: usize },
}

/// Replays the exposures of one trajectory step, consuming the random
/// stream exactly like live execution, without touching the diagram unless
/// an error fires.
fn fast_forward_step(
    program: &DdProgram,
    ff: &StepFF,
    dd: &mut DdPackage,
    rng: &mut StdRng,
    error_events: &mut usize,
) -> FastForward {
    for (index, exposure) in ff.exposures.iter().enumerate() {
        match exposure.kind {
            FFKind::Passive => match program.channels[exposure.channel].sample_error(rng) {
                SampledError::None => {}
                SampledError::Unitary(u) => {
                    *error_events += 1;
                    let err = program.noise_ops[exposure.channel].unitaries[exposure.qubit][u];
                    let state = dd.mat_vec_mul(err, exposure.before);
                    return FastForward::Deviated {
                        state,
                        resume_at: index + 1,
                    };
                }
                SampledError::Kraus => {
                    unreachable!("passive exposures come from unitary-equivalent channels")
                }
            },
            FFKind::Damping { p_decay } => {
                // The damping channel consumes no randomness in
                // sample_error (it always takes the Kraus path); this
                // branch decision is its single draw, exactly as in live
                // execution.
                if rng.gen::<f64>() < p_decay {
                    *error_events += 1;
                    let [decay, _keep] = program.noise_ops[exposure.channel].kraus[exposure.qubit]
                        .expect("damping exposures carry Kraus operators");
                    let (_, decayed) = dd.apply_kraus(decay, exposure.before);
                    return FastForward::Deviated {
                        state: decayed,
                        resume_at: index + 1,
                    };
                }
                // No decay: the precomputed trajectory already continues
                // from the renormalised keep state.
            }
        }
    }
    FastForward::Clean
}

/// Applies a step's noise exposures by live diagram evolution, skipping the
/// first `skip` (qubit, channel) pairs (already handled by fast-forward).
fn apply_noise_live(
    program: &DdProgram,
    dd: &mut DdPackage,
    noise_qubits: &[usize],
    skip: usize,
    mut state: VecEdge,
    rng: &mut StdRng,
    error_events: &mut usize,
) -> VecEdge {
    let width = program.channels.len();
    for (position, &qubit) in noise_qubits.iter().enumerate() {
        for (index, channel) in program.channels.iter().enumerate() {
            if position * width + index < skip {
                continue;
            }
            match channel.sample_error(rng) {
                SampledError::None => {}
                SampledError::Unitary(u) => {
                    *error_events += 1;
                    let err = program.noise_ops[index].unitaries[qubit][u];
                    state = dd.mat_vec_mul(err, state);
                }
                SampledError::Kraus => {
                    // Amplitude damping: branch probabilities are the
                    // squared norms of the (non-unitary) branch states
                    // (Example 6 of the paper).
                    let [decay, keep] = program.noise_ops[index].kraus[qubit]
                        .expect("Kraus events only come from Kraus channels");
                    let (p_decay, decayed) = dd.apply_kraus(decay, state);
                    if rng.gen::<f64>() < p_decay {
                        *error_events += 1;
                        state = decayed;
                    } else {
                        let (_, kept) = dd.apply_kraus(keep, state);
                        state = kept;
                    }
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};
    use rand::SeedableRng;

    #[test]
    fn noiseless_ghz_only_yields_all_zero_or_all_one() {
        let backend = DdSimulator::new();
        let circuit = ghz(10);
        let noiseless = NoiseModel::noiseless();
        let program = backend.compile(&circuit, &noiseless);
        let mut ctx = backend.new_context();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let run = backend.run_shot(&program, &mut ctx, &mut rng);
            assert!(run.outcome == 0 || run.outcome == (1 << 10) - 1);
            assert_eq!(run.error_events, 0);
        }
    }

    #[test]
    fn ghz_dd_stays_small_even_with_noise() {
        let backend = DdSimulator::new();
        let circuit = ghz(24);
        let noise = NoiseModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let run = backend.run_once(&circuit, &noise, &mut rng);
        assert!(
            run.dd_nodes <= 2 * 24,
            "noisy GHZ run produced {} nodes",
            run.dd_nodes
        );
        assert!(run.dd_nodes_peak >= run.dd_nodes);
    }

    #[test]
    fn measured_circuit_packs_classical_bits() {
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(3);
        circuit.x(0).measure_all();
        let mut rng = StdRng::seed_from_u64(9);
        let run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        assert_eq!(run.outcome, 0b100);
        assert_eq!(run.clbits, vec![true, false, false]);
    }

    #[test]
    fn observables_match_known_values_for_noiseless_ghz() {
        let backend = DdSimulator::new();
        let circuit = ghz(4);
        let program = backend.compile(&circuit, &NoiseModel::noiseless());
        let mut ctx = backend.new_context();
        let mut rng = StdRng::seed_from_u64(4);
        let mut run = backend.run_shot(&program, &mut ctx, &mut rng);
        let p0 = backend.evaluate(
            &program,
            &mut ctx,
            &mut run,
            &Observable::BasisProbability(0),
        );
        let p15 = backend.evaluate(
            &program,
            &mut ctx,
            &mut run,
            &Observable::BasisProbability(15),
        );
        let pq = backend.evaluate(
            &program,
            &mut ctx,
            &mut run,
            &Observable::QubitExcitation(2),
        );
        assert!((p0 - 0.5).abs() < 1e-10);
        assert!((p15 - 0.5).abs() < 1e-10);
        assert!((pq - 0.5).abs() < 1e-10);
    }

    #[test]
    fn fidelity_observable_recognises_the_prepared_state() {
        let backend = DdSimulator::new();
        let circuit = ghz(3);
        let program = backend.compile(&circuit, &NoiseModel::noiseless());
        let mut ctx = backend.new_context();
        let mut rng = StdRng::seed_from_u64(4);
        let mut run = backend.run_shot(&program, &mut ctx, &mut rng);
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        let mut reference = vec![qsdd_dd::Complex::ZERO; 8];
        reference[0] = qsdd_dd::Complex::real(inv);
        reference[7] = qsdd_dd::Complex::real(inv);
        let f = backend.evaluate(
            &program,
            &mut ctx,
            &mut run,
            &Observable::Fidelity(reference),
        );
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_runs_under_noise_without_blowup() {
        let backend = DdSimulator::new();
        let circuit = qft(16);
        let noise = NoiseModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        let run = backend.run_once(&circuit, &noise, &mut rng);
        // QFT of |0..0> stays a product state, so the DD stays linear even
        // with sporadic errors.
        assert!(
            run.dd_nodes <= 4 * 16,
            "nodes={} peak={}",
            run.dd_nodes,
            run.dd_nodes_peak
        );
        assert!(run.dd_nodes_peak <= 8 * 16);
    }

    #[test]
    fn reset_forces_qubit_back_to_zero() {
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(2);
        circuit.x(0).reset(0).measure_all();
        let mut rng = StdRng::seed_from_u64(6);
        let run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        assert_eq!(run.outcome, 0);
    }

    #[test]
    fn reused_context_reproduces_fresh_context_shots_exactly() {
        let backend = DdSimulator::new();
        let circuit = qft(6);
        let noise = NoiseModel::paper_defaults();
        let program = backend.compile(&circuit, &noise);
        let mut reused = backend.new_context();
        for seed in 0..24u64 {
            let mut rng_reused = StdRng::seed_from_u64(seed);
            let mut rng_fresh = StdRng::seed_from_u64(seed);
            let a = backend.run_shot(&program, &mut reused, &mut rng_reused);
            let mut fresh = backend.new_context();
            let b = backend.run_shot(&program, &mut fresh, &mut rng_fresh);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.error_events, b.error_events);
            assert_eq!(a.dd_nodes, b.dd_nodes);
            assert_eq!(a.dd_nodes_peak, b.dd_nodes_peak);
            assert_eq!(a.state, b.state, "reuse changed the final state edge");
        }
    }

    #[test]
    fn context_reseats_across_programs() {
        let backend = DdSimulator::new();
        let noise = NoiseModel::paper_defaults();
        let ghz_program = backend.compile(&ghz(5), &noise);
        let qft_program = backend.compile(&qft(4), &noise);
        let mut ctx = backend.new_context();
        // Alternate programs through one context; every shot must match a
        // fresh-context run of the same program and seed.
        for round in 0..6u64 {
            for program in [&ghz_program, &qft_program] {
                let mut rng_a = StdRng::seed_from_u64(round);
                let mut rng_b = StdRng::seed_from_u64(round);
                let a = backend.run_shot(program, &mut ctx, &mut rng_a);
                let mut fresh = backend.new_context();
                let b = backend.run_shot(program, &mut fresh, &mut rng_b);
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.state, b.state);
            }
        }
    }

    #[test]
    fn compiled_program_reports_its_shape() {
        let backend = DdSimulator::new();
        let program = backend.compile(&ghz(5), &NoiseModel::paper_defaults());
        assert_eq!(program.num_qubits(), 5);
        assert_eq!(program.step_count(), 5);
        assert!(program.persistent_mat_nodes() > 0);
        // Measurement-free circuit: the trajectory covers every step.
        assert_eq!(program.trajectory_steps(), 5);
    }

    #[test]
    fn trajectory_stops_at_the_first_measurement() {
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(2);
        circuit.h(0).measure(0, 0).x(1);
        let program = backend.compile(&circuit, &NoiseModel::paper_defaults());
        assert_eq!(program.step_count(), 3);
        assert_eq!(program.trajectory_steps(), 1);
    }

    #[test]
    fn certain_damping_forces_decay_through_the_fast_path() {
        // p = 1 amplitude damping: the X gate excites qubit 0, the
        // subsequent exposure decays it back with certainty. This pins the
        // Damping deviation branch of the fast-forward.
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(1);
        circuit.x(0);
        let noise = NoiseModel::new(0.0, 1.0, 0.0);
        let program = backend.compile(&circuit, &noise);
        let mut ctx = backend.new_context();
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = backend.run_shot(&program, &mut ctx, &mut rng);
            assert_eq!(run.outcome, 0, "qubit must have decayed to |0>");
            assert_eq!(run.error_events, 1);
        }
    }

    #[test]
    fn certain_phase_flip_fires_through_the_fast_path() {
        // p = 1 phase flip: Z after the X gate leaves |1> measurable but
        // counts one error event. This pins the Passive deviation branch.
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(1);
        circuit.x(0);
        let noise = NoiseModel::new(0.0, 0.0, 1.0);
        let program = backend.compile(&circuit, &noise);
        let mut ctx = backend.new_context();
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = backend.run_shot(&program, &mut ctx, &mut rng);
            assert_eq!(run.outcome, 1);
            assert_eq!(run.error_events, 1);
        }
    }
}
