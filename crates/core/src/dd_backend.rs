//! The decision-diagram back-end: the paper's proposed simulator.
//!
//! Every stochastic run owns a fresh [`DdPackage`], so runs are completely
//! independent and can execute on different threads without sharing mutable
//! state. Within a run, gates are applied as matrix decision diagrams and
//! stochastic error events are injected after every gate on every touched
//! qubit, exactly as described in Sections III and IV of the paper.

use qsdd_circuit::{Circuit, Operation};
use qsdd_dd::{DdPackage, Matrix2, VecEdge};
use qsdd_noise::{NoiseModel, StochasticAction};
use rand::rngs::StdRng;
use rand::Rng;

use crate::backend::{pack_clbits, SingleRun, StochasticBackend};
use crate::estimator::Observable;

/// Final state of a decision-diagram run: the package owning the diagram and
/// the edge of the final state.
#[derive(Debug)]
pub struct DdRunState {
    /// The package owning every node of the run.
    pub package: DdPackage,
    /// Root edge of the final state.
    pub state: VecEdge,
    /// Number of qubits of the simulated circuit.
    pub num_qubits: usize,
}

impl DdRunState {
    /// Size of the final state's decision diagram (number of nodes).
    pub fn node_count(&self) -> usize {
        self.package.vec_node_count(self.state)
    }
}

/// The decision-diagram simulator back-end (the "Proposed" column of
/// Table I).
#[derive(Clone, Copy, Debug, Default)]
pub struct DdSimulator {
    caching: bool,
}

impl DdSimulator {
    /// Creates a back-end with operation caching enabled.
    pub fn new() -> Self {
        DdSimulator { caching: true }
    }

    /// Creates a back-end with operation caching disabled (ablation only).
    pub fn without_caching() -> Self {
        DdSimulator { caching: false }
    }

    /// Runs a circuit without noise and returns the final decision diagram.
    ///
    /// This is the deterministic simulation primitive; it is also used by
    /// the examples to inspect decision diagram sizes.
    pub fn simulate_noiseless(&self, circuit: &Circuit) -> DdRunState {
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let noiseless = NoiseModel::noiseless();
        let run = self.run_once(circuit, &noiseless, &mut rng);
        run.state
    }
}

impl StochasticBackend for DdSimulator {
    type State = DdRunState;

    fn name(&self) -> &'static str {
        "decision-diagram"
    }

    fn run_once(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut StdRng,
    ) -> SingleRun<Self::State> {
        let n = circuit.num_qubits();
        let mut dd = DdPackage::new();
        dd.set_caching(self.caching);
        let mut state = dd.zero_state(n);
        let mut clbits = vec![false; circuit.num_clbits()];
        let mut measured_any = false;
        let mut error_events = 0usize;
        let channels = noise.channels();

        for op in circuit {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => {
                    let m = gate
                        .matrix()
                        .expect("non-swap gates always provide a matrix");
                    let op_dd = dd.controlled_op(n, *target, controls, m);
                    state = dd.mat_vec_mul(op_dd, state);
                }
                Operation::Swap { a, b } => {
                    let op_dd = dd.swap_op(n, *a, *b);
                    state = dd.mat_vec_mul(op_dd, state);
                }
                Operation::Measure { qubit, clbit } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    clbits[*clbit] = outcome;
                    measured_any = true;
                    continue;
                }
                Operation::Reset { qubit } => {
                    let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                    state = collapsed;
                    if outcome {
                        let x = dd.single_qubit_op(n, *qubit, Matrix2::pauli_x());
                        state = dd.mat_vec_mul(x, state);
                    }
                    continue;
                }
                Operation::Barrier => continue,
            }
            if channels.is_empty() {
                continue;
            }
            for qubit in op.qubits() {
                for channel in &channels {
                    match channel.sample_action(rng) {
                        StochasticAction::None => {}
                        StochasticAction::Unitary(m) => {
                            error_events += 1;
                            let err = dd.single_qubit_op(n, qubit, m);
                            state = dd.mat_vec_mul(err, state);
                        }
                        StochasticAction::Kraus(branches) => {
                            // Amplitude damping: branch probabilities are the
                            // squared norms of the (non-unitary) branch states
                            // (Example 6 of the paper).
                            let decay = dd.single_qubit_op(n, qubit, branches[0]);
                            let (p_decay, decayed) = dd.apply_kraus(decay, state);
                            if rng.gen::<f64>() < p_decay {
                                error_events += 1;
                                state = decayed;
                            } else {
                                let keep = dd.single_qubit_op(n, qubit, branches[1]);
                                let (_, kept) = dd.apply_kraus(keep, state);
                                state = kept;
                            }
                        }
                    }
                }
            }
        }

        let outcome = if measured_any {
            pack_clbits(&clbits)
        } else {
            dd.sample_measurement(state, n, rng)
        };
        SingleRun {
            outcome,
            clbits,
            error_events,
            state: DdRunState {
                package: dd,
                state,
                num_qubits: n,
            },
        }
    }

    fn evaluate(&self, run: &mut SingleRun<Self::State>, observable: &Observable) -> f64 {
        let num_qubits = run.state.num_qubits;
        let state = run.state.state;
        let package = &mut run.state.package;
        match observable {
            Observable::BasisProbability(index) => {
                package.amplitude(state, num_qubits, *index).norm_sqr()
            }
            Observable::QubitExcitation(qubit) => package.probability_one(state, *qubit),
            Observable::Fidelity(reference) => {
                let reference_edge = package.from_statevector(reference);
                package.fidelity(reference_edge, state)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};
    use rand::SeedableRng;

    #[test]
    fn noiseless_ghz_only_yields_all_zero_or_all_one() {
        let backend = DdSimulator::new();
        let circuit = ghz(10);
        let noiseless = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let run = backend.run_once(&circuit, &noiseless, &mut rng);
            assert!(run.outcome == 0 || run.outcome == (1 << 10) - 1);
            assert_eq!(run.error_events, 0);
        }
    }

    #[test]
    fn ghz_dd_stays_small_even_with_noise() {
        let backend = DdSimulator::new();
        let circuit = ghz(24);
        let noise = NoiseModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let run = backend.run_once(&circuit, &noise, &mut rng);
        assert!(
            run.state.node_count() <= 2 * 24,
            "noisy GHZ run produced {} nodes",
            run.state.node_count()
        );
    }

    #[test]
    fn measured_circuit_packs_classical_bits() {
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(3);
        circuit.x(0).measure_all();
        let mut rng = StdRng::seed_from_u64(9);
        let run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        assert_eq!(run.outcome, 0b100);
        assert_eq!(run.clbits, vec![true, false, false]);
    }

    #[test]
    fn observables_match_known_values_for_noiseless_ghz() {
        let backend = DdSimulator::new();
        let circuit = ghz(4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        let p0 = backend.evaluate(&mut run, &Observable::BasisProbability(0));
        let p15 = backend.evaluate(&mut run, &Observable::BasisProbability(15));
        let pq = backend.evaluate(&mut run, &Observable::QubitExcitation(2));
        assert!((p0 - 0.5).abs() < 1e-10);
        assert!((p15 - 0.5).abs() < 1e-10);
        assert!((pq - 0.5).abs() < 1e-10);
    }

    #[test]
    fn fidelity_observable_recognises_the_prepared_state() {
        let backend = DdSimulator::new();
        let circuit = ghz(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        let mut reference = vec![qsdd_dd::Complex::ZERO; 8];
        reference[0] = qsdd_dd::Complex::real(inv);
        reference[7] = qsdd_dd::Complex::real(inv);
        let f = backend.evaluate(&mut run, &Observable::Fidelity(reference));
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_runs_under_noise_without_blowup() {
        let backend = DdSimulator::new();
        let circuit = qft(16);
        let noise = NoiseModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        let run = backend.run_once(&circuit, &noise, &mut rng);
        // QFT of |0..0> stays a product state, so the DD stays linear even
        // with sporadic errors.
        assert!(run.state.node_count() <= 4 * 16);
    }

    #[test]
    fn reset_forces_qubit_back_to_zero() {
        let backend = DdSimulator::new();
        let mut circuit = Circuit::new(2);
        circuit.x(0).reset(0).measure_all();
        let mut rng = StdRng::seed_from_u64(6);
        let run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
        assert_eq!(run.outcome, 0);
    }
}
