//! Extraction of amplitudes, dense vectors/matrices, and Graphviz dumps.
//!
//! These helpers are mostly used by tests, examples and documentation — they
//! materialise exponential objects and must only be called for small qubit
//! counts.

use crate::complex::Complex;
use crate::node::{MatEdge, VecEdge};
use crate::package::DdPackage;

impl DdPackage {
    /// Returns the amplitude of the computational basis state `index` (qubit
    /// 0 is the most significant bit of the index).
    pub fn amplitude(&self, v: VecEdge, n: usize, index: u64) -> Complex {
        assert!((1..=64).contains(&n), "qubit count must be within 1..=64");
        let mut value = self.ctable.value(v.weight);
        let mut node_id = v.node;
        for level in 0..n {
            if value.is_zero() {
                return Complex::ZERO;
            }
            if node_id.is_terminal() {
                break;
            }
            let node = self.vec_nodes[node_id.index()];
            let bit = ((index >> (n - 1 - level)) & 1) as usize;
            let edge = node.edges[bit];
            value *= self.ctable.value(edge.weight);
            node_id = edge.node;
        }
        value
    }

    /// Materialises the full state vector (length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 26` to guard against accidental exponential blow-up.
    pub fn to_statevector(&self, v: VecEdge, n: usize) -> Vec<Complex> {
        assert!(n <= 26, "refusing to materialise more than 2^26 amplitudes");
        let mut out = vec![Complex::ZERO; 1usize << n];
        self.fill_statevector(v, n, 0, 0, Complex::ONE, &mut out);
        out
    }

    fn fill_statevector(
        &self,
        edge: VecEdge,
        n: usize,
        level: usize,
        prefix: usize,
        acc: Complex,
        out: &mut [Complex],
    ) {
        if edge.is_zero() {
            return;
        }
        let acc = acc * self.ctable.value(edge.weight);
        if level == n {
            out[prefix] = acc;
            return;
        }
        debug_assert!(!edge.node.is_terminal(), "state shorter than qubit count");
        let node = self.vec_nodes[edge.node.index()];
        self.fill_statevector(node.edges[0], n, level + 1, prefix << 1, acc, out);
        self.fill_statevector(node.edges[1], n, level + 1, (prefix << 1) | 1, acc, out);
    }

    /// Visits every computational basis state with non-zero amplitude,
    /// calling `sink(index, probability)` with the squared magnitude
    /// (qubit 0 is the most significant bit of the index, matching
    /// [`DdPackage::amplitude`]).
    ///
    /// Unlike [`DdPackage::to_statevector`] this never materialises the
    /// dense vector: the traversal skips zero-weight edges, so sparse
    /// states (the common case for stabilizer-like circuits) are walked
    /// in time proportional to their support rather than `2^n`.
    pub fn outcome_probabilities(&self, v: VecEdge, n: usize, sink: &mut dyn FnMut(u64, f64)) {
        assert!((1..=64).contains(&n), "qubit count must be within 1..=64");
        self.visit_probabilities(v, n, 0, 0, 1.0, sink);
    }

    fn visit_probabilities(
        &self,
        edge: VecEdge,
        n: usize,
        level: usize,
        prefix: u64,
        acc: f64,
        sink: &mut dyn FnMut(u64, f64),
    ) {
        if edge.is_zero() {
            return;
        }
        let acc = acc * self.ctable.value(edge.weight).norm_sqr();
        if acc == 0.0 {
            return;
        }
        if level == n {
            sink(prefix, acc);
            return;
        }
        debug_assert!(!edge.node.is_terminal(), "state shorter than qubit count");
        let node = self.vec_nodes[edge.node.index()];
        self.visit_probabilities(node.edges[0], n, level + 1, prefix << 1, acc, sink);
        self.visit_probabilities(node.edges[1], n, level + 1, (prefix << 1) | 1, acc, sink);
    }

    /// Builds a decision diagram state from a dense amplitude vector.
    ///
    /// The vector length must be a power of two; the state is not
    /// renormalised.
    ///
    /// # Panics
    ///
    /// Panics if the length of `amplitudes` is not a power of two `2^n` with
    /// `n >= 1`.
    pub fn from_statevector(&mut self, amplitudes: &[Complex]) -> VecEdge {
        let len = amplitudes.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "length must be 2^n, n >= 1"
        );
        self.slice_to_edge(amplitudes, 0)
    }

    fn slice_to_edge(&mut self, amps: &[Complex], level: usize) -> VecEdge {
        if amps.len() == 1 {
            if amps[0].is_zero() {
                return VecEdge::zero();
            }
            let w = self.ctable.lookup(amps[0]);
            return VecEdge::terminal(w);
        }
        let half = amps.len() / 2;
        let c0 = self.slice_to_edge(&amps[..half], level + 1);
        let c1 = self.slice_to_edge(&amps[half..], level + 1);
        self.make_vec_node(level as u16, [c0, c1])
    }

    /// Materialises the full operator matrix (dimension `2^n x 2^n`),
    /// row-major.
    ///
    /// # Panics
    ///
    /// Panics if `n > 13` to guard against accidental exponential blow-up.
    pub fn to_matrix(&self, m: MatEdge, n: usize) -> Vec<Vec<Complex>> {
        assert!(
            n <= 13,
            "refusing to materialise more than 2^26 matrix entries"
        );
        let dim = 1usize << n;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        self.fill_matrix(m, n, 0, 0, 0, Complex::ONE, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_matrix(
        &self,
        edge: MatEdge,
        n: usize,
        level: usize,
        row: usize,
        col: usize,
        acc: Complex,
        out: &mut [Vec<Complex>],
    ) {
        if edge.is_zero() {
            return;
        }
        let acc = acc * self.ctable.value(edge.weight);
        if level == n {
            out[row][col] = acc;
            return;
        }
        debug_assert!(
            !edge.node.is_terminal(),
            "operator shorter than qubit count"
        );
        let node = self.mat_nodes[edge.node.index()];
        for r in 0..2 {
            for c in 0..2 {
                self.fill_matrix(
                    node.edges[2 * r + c],
                    n,
                    level + 1,
                    (row << 1) | r,
                    (col << 1) | c,
                    acc,
                    out,
                );
            }
        }
    }

    /// Renders the vector decision diagram in Graphviz DOT format.
    ///
    /// Edge weights are printed with three significant digits; zero edges are
    /// omitted, matching the "0-stub" convention of the paper's figures.
    pub fn vec_to_dot(&self, v: VecEdge) -> String {
        let mut out = String::from("digraph dd {\n  rankdir=TB;\n  root [shape=point];\n");
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut stack = vec![v.node];
        out.push_str(&format!(
            "  root -> {} [label=\"{}\"];\n",
            node_name(v),
            weight_label(self.ctable.value(v.weight))
        ));
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            let data = self.vec_nodes[node.index()];
            out.push_str(&format!(
                "  n{} [label=\"q{}\", shape=circle];\n",
                node.index(),
                data.var
            ));
            for (i, e) in data.edges.iter().enumerate() {
                if e.is_zero() {
                    continue;
                }
                out.push_str(&format!(
                    "  n{} -> {} [label=\"{}: {}\"];\n",
                    node.index(),
                    node_name(*e),
                    i,
                    weight_label(self.ctable.value(e.weight))
                ));
                stack.push(e.node);
            }
        }
        out.push_str("  terminal [label=\"1\", shape=box];\n}\n");
        out
    }
}

fn node_name(e: VecEdge) -> String {
    if e.node.is_terminal() {
        "terminal".to_string()
    } else {
        format!("n{}", e.node.index())
    }
}

fn weight_label(c: Complex) -> String {
    if c.im.abs() < 1e-9 {
        format!("{:.3}", c.re)
    } else {
        format!("{:.3}{:+.3}i", c.re, c.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::FRAC_1_SQRT_2;
    use crate::matrix2::Matrix2;

    #[test]
    fn amplitude_matches_statevector_entries() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let h0 = dd.single_qubit_op(3, 0, Matrix2::hadamard());
        let h2 = dd.single_qubit_op(3, 2, Matrix2::hadamard());
        let s = dd.mat_vec_mul(h0, s);
        let s = dd.mat_vec_mul(h2, s);
        let dense = dd.to_statevector(s, 3);
        for idx in 0..8u64 {
            assert!(dd
                .amplitude(s, 3, idx)
                .approx_eq(dense[idx as usize], 1e-12));
        }
    }

    #[test]
    fn outcome_probabilities_matches_dense_norms() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let h0 = dd.single_qubit_op(3, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(3, 1, &[0], Matrix2::pauli_x());
        let s = dd.mat_vec_mul(h0, s);
        let s = dd.mat_vec_mul(cx, s);
        let dense = dd.to_statevector(s, 3);
        let mut sparse = crate::fxhash::FxHashMap::default();
        dd.outcome_probabilities(s, 3, &mut |index, p| {
            assert!(sparse.insert(index, p).is_none(), "index visited twice");
        });
        for (idx, amp) in dense.iter().enumerate() {
            let expected = amp.norm_sqr();
            let got = sparse.get(&(idx as u64)).copied().unwrap_or(0.0);
            assert!((expected - got).abs() < 1e-12, "index {idx}");
        }
        // GHZ-like support: only |000> and |110> are populated.
        assert_eq!(sparse.len(), 2);
    }

    #[test]
    fn from_statevector_round_trips() {
        let mut dd = DdPackage::new();
        let amps = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(-0.5, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let s = dd.from_statevector(&amps);
        let back = dd.to_statevector(s, 2);
        for (a, b) in amps.iter().zip(back.iter()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn to_matrix_reconstructs_cnot() {
        let mut dd = DdPackage::new();
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let m = dd.to_matrix(cx, 2);
        let expected = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert!(m[r][c].approx_eq(Complex::real(expected[r][c]), 1e-12));
            }
        }
    }

    #[test]
    fn dot_export_mentions_every_qubit() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2);
        let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let s = dd.mat_vec_mul(h, s);
        let bell = dd.mat_vec_mul(cx, s);
        let dot = dd.vec_to_dot(bell);
        assert!(dot.contains("q0"));
        assert!(dot.contains("q1"));
        assert!(dot.contains("terminal"));
        assert!(dot.contains(&format!("{:.3}", FRAC_1_SQRT_2)));
    }

    #[test]
    fn figure_1a_bell_state_diagram_structure() {
        // Fig. 1a of the paper: the Bell state (|00> + |11>)/sqrt(2) uses one
        // q0 node and two q1 nodes.
        let mut dd = DdPackage::new();
        let amps = vec![
            Complex::real(FRAC_1_SQRT_2),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(FRAC_1_SQRT_2),
        ];
        let s = dd.from_statevector(&amps);
        assert_eq!(dd.vec_node_count(s), 3);
        // Root weight carries the common 1/sqrt(2) factor.
        assert!(dd
            .complex_value(s.weight)
            .approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    }
}
