//! Canonical storage of complex edge weights.
//!
//! Decision diagram canonicity requires that two numerically equal edge
//! weights are represented by the *same* handle, so that node hashing and
//! unique-table lookups work on exact integer identifiers rather than on
//! floating point values. The [`ComplexTable`] interns every complex value
//! that appears as an edge weight and hands out stable [`ComplexId`]s.
//! Values that differ by less than the table tolerance map to the same id,
//! which absorbs floating point round-off accumulated during decision diagram
//! operations (the approach of the JKU DD package, cf. Zulehner et al.,
//! ICCAD 2019).
//!
//! ## First-comer representatives, not grid points
//!
//! Matching is *ball*-based: a looked-up value joins the first interned
//! entry within `tolerance` of it (per component), and that first value —
//! bits and all — stays the canonical representative of its neighbourhood.
//! Storing the first *actual* value matters: if entries were instead snapped
//! to tolerance-grid points, every arithmetic step would re-quantise through
//! representatives carrying ~`tolerance/2` error, so two mathematically
//! equal amplitudes computed along different operation routes would diverge
//! at the same scale as the matching cell and land in different cells —
//! node sharing collapses and diagram sizes explode (measured: a 16-qubit
//! QFT grows from 16 to ~15k nodes, at *any* grid pitch, because the
//! injected noise scales with the pitch). First-comer representatives keep
//! the stored values accurate to genuine float round-off (~1e-15), so
//! differently-routed computations of the same amplitude stay deep inside
//! one matching ball and reconverge onto one id.
//!
//! ## Concurrency and determinism
//!
//! All interning operations take `&self`: the value arena supports
//! concurrent appends, the spatial index is sharded behind per-stripe locks,
//! and *creation* of new entries is serialised behind a single creation lock
//! with a double-check, so racing threads can never insert two entries for
//! one neighbourhood. Hits are pure functions of the table contents, but
//! **which value becomes a representative depends on creation order** — a
//! ball-matching table cannot be order-independent (any canonicalisation
//! that is both a pure function of the value and constant on tolerance
//! balls is a grid, see above). Byte-for-bit reproducibility across thread
//! counts is therefore enforced one level up: [`crate::DdPackage`]'s
//! fork-join operations run speculatively and roll back any parallel
//! attempt that created a table entry, re-running it serially, so entry
//! creation only ever happens in the deterministic serial order (see the
//! module docs of [`crate::ops`]).
//!
//! Values within tolerance of the exact constants `0` and `1` snap to those
//! constants so the `is_zero`/`is_one` fast paths stay reliable.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::complex::Complex;
use crate::concurrent::{ChunkedArena, StripedMap, STRIPES};

/// Handle to an interned complex value inside a [`ComplexTable`].
///
/// Ids are only meaningful for the table that produced them. The two most
/// common weights have fixed ids: [`ComplexId::ZERO`] and [`ComplexId::ONE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComplexId(pub(crate) u32);

impl ComplexId {
    /// The id of the value `0`.
    pub const ZERO: ComplexId = ComplexId(0);
    /// The id of the value `1`.
    pub const ONE: ComplexId = ComplexId(1);

    /// Returns `true` when this id refers to the value `0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == ComplexId::ZERO
    }

    /// Returns `true` when this id refers to the value `1`.
    #[inline]
    pub fn is_one(self) -> bool {
        self == ComplexId::ONE
    }

    /// Raw index of the interned value (mainly useful for statistics).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Default tolerance under which two complex values are considered equal.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Interning table for complex edge weights with tolerance-ball lookup.
///
/// All interning operations take `&self`: the value arena supports
/// concurrent appends and the spatial index is sharded behind per-stripe
/// locks, so several fork-join workers can intern weights into one table.
/// See the module docs for the determinism contract.
///
/// # Examples
///
/// ```
/// use qsdd_dd::{Complex, ComplexTable};
///
/// let table = ComplexTable::new();
/// let a = table.lookup(Complex::new(0.5, 0.0));
/// let b = table.lookup(Complex::new(0.5 + 1e-13, 0.0));
/// assert_eq!(a, b); // identical within tolerance
/// ```
#[derive(Debug)]
pub struct ComplexTable {
    values: ChunkedArena<Complex>,
    /// Spatial index: bucket cell -> indices of entries whose value lies in
    /// that cell. Cells span `4 * tolerance`, so a ball probe only needs the
    /// cell and its eight neighbours.
    buckets: StripedMap<(i64, i64), Vec<u32>>,
    /// Serialises entry creation (with a double-check under the lock) so
    /// racing threads cannot insert two representatives for one ball.
    create_lock: Mutex<()>,
    create_contention: AtomicU64,
    tolerance: f64,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl Clone for ComplexTable {
    fn clone(&self) -> Self {
        ComplexTable {
            values: self.values.clone(),
            buckets: self.buckets.clone(),
            create_lock: Mutex::new(()),
            create_contention: AtomicU64::new(self.create_contention.load(Ordering::Relaxed)),
            tolerance: self.tolerance,
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }

    // Hand-rolled so that re-seating a long-lived execution context onto a
    // new program template reuses the existing allocations.
    fn clone_from(&mut self, source: &Self) {
        self.values.clone_from(&source.values);
        self.buckets.clone_from(&source.buckets);
        self.tolerance = source.tolerance;
        *self.lookups.get_mut() = source.lookups.load(Ordering::Relaxed);
        *self.hits.get_mut() = source.hits.load(Ordering::Relaxed);
    }
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table with a custom equality tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not strictly positive.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        let mut table = ComplexTable {
            values: ChunkedArena::new(),
            buckets: StripedMap::new(),
            create_lock: Mutex::new(()),
            create_contention: AtomicU64::new(0),
            tolerance,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        };
        // Insert 0 and 1 at the fixed positions expected by ComplexId.
        let zero = table.insert_exclusive(Complex::ZERO);
        let one = table.insert_exclusive(Complex::ONE);
        debug_assert_eq!(zero, ComplexId::ZERO);
        debug_assert_eq!(one, ComplexId::ONE);
        table
    }

    /// The equality tolerance of this table.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of interned values (including the built-in constants).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when only the built-in constants are interned.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// The complex value an id stands for.
    ///
    /// # Panics
    ///
    /// Panics if the id does not come from this table.
    #[inline]
    pub fn value(&self, id: ComplexId) -> Complex {
        self.values[id.0 as usize]
    }

    /// Bucket-cell coordinates of `value`.
    ///
    /// A cell spans several tolerances so that near-boundary values only
    /// require inspecting the immediate neighbour cells.
    #[inline]
    fn key(&self, value: Complex) -> (i64, i64) {
        let cell = self.tolerance * 4.0;
        (
            (value.re / cell).round() as i64,
            (value.im / cell).round() as i64,
        )
    }

    /// Searches the value's cell and its eight neighbours for an entry
    /// within tolerance. Stripe locks are taken one cell at a time and
    /// never nested.
    fn find(&self, value: Complex) -> Option<ComplexId> {
        let (kr, ki) = self.key(value);
        for dr in -1..=1 {
            for di in -1..=1 {
                let cell = (kr + dr, ki + di);
                let stripe = self.buckets.lock_stripe(&cell);
                if let Some(candidates) = stripe.get(&cell) {
                    for &idx in candidates {
                        if self.values[idx as usize].approx_eq(value, self.tolerance) {
                            return Some(ComplexId(idx));
                        }
                    }
                }
            }
        }
        None
    }

    /// Appends `value` without taking any lock (construction only).
    fn insert_exclusive(&mut self, value: Complex) -> ComplexId {
        let idx = self.values.push(value) as u32;
        let key = self.key(value);
        self.buckets
            .stripe_mut(&key)
            .entry(key)
            .or_default()
            .push(idx);
        ComplexId(idx)
    }

    /// Interns `value`, returning the id of an existing entry within
    /// tolerance if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains NaN components.
    pub fn lookup(&self, value: Complex) -> ComplexId {
        assert!(!value.is_nan(), "cannot intern NaN complex value");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        // Values within tolerance of the canonical 0/1 snap to them so that
        // the fast-path identities (is_zero / is_one) stay reliable.
        if value.approx_eq(Complex::ZERO, self.tolerance) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ComplexId::ZERO;
        }
        if value.approx_eq(Complex::ONE, self.tolerance) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ComplexId::ONE;
        }
        if let Some(found) = self.find(value) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        // Creation path: serialise, then re-probe under the lock — a racing
        // thread may have created a matching entry between our miss and the
        // lock acquisition.
        let guard = match self.create_lock.try_lock() {
            Some(guard) => guard,
            None => {
                self.create_contention.fetch_add(1, Ordering::Relaxed);
                self.create_lock.lock()
            }
        };
        if let Some(found) = self.find(value) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        let idx = self.values.push(value) as u32;
        let key = self.key(value);
        self.buckets
            .lock_stripe(&key)
            .entry(key)
            .or_default()
            .push(idx);
        drop(guard);
        ComplexId(idx)
    }

    /// Looks up the product of two interned values.
    pub fn mul(&self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() || b.is_zero() {
            return ComplexId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.lookup(v)
    }

    /// Looks up the sum of two interned values.
    pub fn add(&self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.lookup(v)
    }

    /// Looks up the difference of two interned values.
    pub fn sub(&self, a: ComplexId, b: ComplexId) -> ComplexId {
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) - self.value(b);
        self.lookup(v)
    }

    /// Looks up the quotient of two interned values.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the zero id.
    pub fn div(&self, a: ComplexId, b: ComplexId) -> ComplexId {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return ComplexId::ONE;
        }
        let v = self.value(a) / self.value(b);
        self.lookup(v)
    }

    /// Looks up the complex conjugate of an interned value.
    pub fn conj(&self, a: ComplexId) -> ComplexId {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let v = self.value(a).conj();
        self.lookup(v)
    }

    /// Looks up the negation of an interned value.
    pub fn neg(&self, a: ComplexId) -> ComplexId {
        if a.is_zero() {
            return a;
        }
        let v = -self.value(a);
        self.lookup(v)
    }

    /// Squared magnitude of an interned value.
    #[inline]
    pub fn norm_sqr(&self, a: ComplexId) -> f64 {
        self.value(a).norm_sqr()
    }

    /// Lookup statistics `(lookups, hits)` since table creation.
    ///
    /// Counters are maintained with relaxed atomics; under intra-shot
    /// parallelism their exact values depend on thread interleaving and
    /// must not be part of any determinism contract.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.lookups.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// Number of lock acquisitions (bucket stripes and the creation lock)
    /// that had to wait.
    pub(crate) fn contention(&self) -> u64 {
        self.buckets.contention() + self.create_contention.load(Ordering::Relaxed)
    }

    /// Zeroes the contention counters.
    pub(crate) fn reset_contention(&self) {
        self.buckets.set_contention(0);
        self.create_contention.store(0, Ordering::Relaxed);
    }

    /// Interned entries per index stripe, in stripe order.
    pub(crate) fn stripe_lens(&self) -> [usize; STRIPES] {
        self.buckets.stripe_lens()
    }

    /// Forgets every value interned after the first `len` entries, keeping
    /// the map's allocations for reuse.
    ///
    /// Ids `>= len` become dangling; the caller ([`crate::DdPackage`]'s
    /// transient reset and speculation rollback) guarantees nothing
    /// references them afterwards.
    pub(crate) fn truncate(&mut self, len: usize) {
        if self.values.len() <= len {
            return;
        }
        for idx in len..self.values.len() {
            // Each entry lives in exactly one bucket list — the cell of its
            // own value — so dropping the tail means removing the tail
            // indices from their cells.
            let key = self.key(self.values[idx]);
            let stripe = self.buckets.stripe_mut(&key);
            if let Some(list) = stripe.get_mut(&key) {
                list.retain(|&stored| stored != idx as u32);
                if list.is_empty() {
                    stripe.remove(&key);
                }
            }
        }
        self.values.truncate(len);
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        ComplexTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_have_fixed_ids() {
        let t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::ONE), ComplexId::ONE);
        assert!(t.lookup(Complex::new(1e-14, -1e-14)).is_zero());
        assert!(t.lookup(Complex::new(1.0 + 1e-14, 0.0)).is_one());
    }

    #[test]
    fn nearby_values_share_an_id() {
        let t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.25, -0.75));
        let b = t.lookup(Complex::new(0.25 + 1e-12, -0.75 - 1e-12));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.0));
        let b = t.lookup(Complex::new(0.5, 0.5));
        let c = t.lookup(Complex::new(-0.5, 0.0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn first_comer_value_is_the_representative() {
        // Ball matching: whichever of two nearby values is interned first
        // becomes the stored representative, bits and all. Canonicity needs
        // the representative to track a *real* computed value (grid points
        // would inject cell-scale noise into every downstream operation).
        let u = Complex::new(0.3 + 0.2e-10, 0.7);
        let v = Complex::new(0.3 - 0.2e-10, 0.7);
        let t1 = ComplexTable::new();
        let a1 = t1.lookup(u);
        assert_eq!(t1.lookup(v), a1);
        assert_eq!(t1.value(a1).re.to_bits(), u.re.to_bits());
        let t2 = ComplexTable::new();
        let a2 = t2.lookup(v);
        assert_eq!(t2.lookup(u), a2);
        assert_eq!(t2.value(a2).re.to_bits(), v.re.to_bits());
    }

    #[test]
    fn boundary_straddling_values_still_unify() {
        // Ball matching must unify values within tolerance even when they
        // fall in different spatial index cells (the failure mode of pure
        // grid quantisation).
        let t = ComplexTable::with_tolerance(1e-10);
        let cell = 4e-10;
        for i in 1..50 {
            let near_boundary = (i as f64 + 0.5) * cell;
            let a = t.lookup(Complex::new(near_boundary - 0.4e-10, 0.0));
            let b = t.lookup(Complex::new(near_boundary + 0.4e-10, 0.0));
            assert_eq!(a, b, "split at boundary {i}");
        }
        // More than a tolerance apart: always distinct.
        let a = t.lookup(Complex::new(0.5, 0.0));
        let c = t.lookup(Complex::new(0.5 + 2.5e-10, 0.0));
        assert_ne!(a, c);
    }

    #[test]
    fn concurrent_lookups_agree_with_each_other() {
        // Threads hammering one table must agree on one id per value and
        // the creation double-check must never mint two entries for one
        // ball. (Id *numbering* depends on creation order, so each thread
        // records its own view and the views are compared afterwards.)
        let t = ComplexTable::new();
        let probe: Vec<Complex> = (0..256)
            .map(|i| Complex::new(0.001 * i as f64, -0.002 * i as f64))
            .collect();
        let views: Vec<Vec<ComplexId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (t, probe) = (&t, &probe);
                    s.spawn(move || probe.iter().map(|&v| t.lookup(v)).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for view in &views[1..] {
            assert_eq!(view, &views[0], "threads disagree on interned ids");
        }
        assert_eq!(t.len(), 2 + 255); // i == 0 snapped to ZERO
    }

    #[test]
    fn arithmetic_helpers_match_direct_computation() {
        let t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(-0.1, 0.9));
        let prod = t.mul(a, b);
        assert!(t
            .value(prod)
            .approx_eq(Complex::new(0.3, 0.4) * Complex::new(-0.1, 0.9), 1e-12));
        let sum = t.add(a, b);
        assert!(t.value(sum).approx_eq(Complex::new(0.2, 1.3), 1e-12));
        let quot = t.div(prod, b);
        assert_eq!(quot, a);
        let conj = t.conj(a);
        assert!(t.value(conj).approx_eq(Complex::new(0.3, -0.4), 1e-12));
    }

    #[test]
    fn mul_fast_paths() {
        let t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        assert_eq!(t.mul(ComplexId::ZERO, a), ComplexId::ZERO);
        assert_eq!(t.mul(a, ComplexId::ZERO), ComplexId::ZERO);
        assert_eq!(t.mul(ComplexId::ONE, a), a);
        assert_eq!(t.mul(a, ComplexId::ONE), a);
        assert_eq!(t.div(a, a), ComplexId::ONE);
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn division_by_zero_panics() {
        let t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        let _ = t.div(a, ComplexId::ZERO);
    }

    #[test]
    fn table_does_not_grow_for_repeated_values() {
        let t = ComplexTable::new();
        for _ in 0..1000 {
            t.lookup(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
        }
        assert_eq!(t.len(), 3);
        let (lookups, hits) = t.stats();
        assert_eq!(lookups, 1000);
        assert_eq!(hits, 999);
    }

    #[test]
    fn truncate_forgets_the_tail_and_frees_its_keys() {
        let mut t = ComplexTable::new();
        let kept = t.lookup(Complex::new(0.5, 0.25));
        let mark = t.len();
        let dropped = t.lookup(Complex::new(0.125, -0.125));
        assert_eq!(dropped.index(), mark);
        t.truncate(mark);
        assert_eq!(t.len(), mark);
        // The kept entry still resolves; re-interning the dropped value
        // allocates a fresh id at the old position.
        assert_eq!(t.lookup(Complex::new(0.5, 0.25)), kept);
        let again = t.lookup(Complex::new(0.125, -0.125));
        assert_eq!(again.index(), mark);
    }

    #[test]
    fn truncate_keeps_cell_mates_of_dropped_entries() {
        // Two distinct entries can share one spatial cell (cells span four
        // tolerances); truncating one must not evict the other.
        let mut t = ComplexTable::with_tolerance(1e-10);
        let kept = t.lookup(Complex::new(0.5, 0.0));
        let mark = t.len();
        let dropped = t.lookup(Complex::new(0.5 + 1.5e-10, 0.0));
        assert_ne!(kept, dropped);
        t.truncate(mark);
        assert_eq!(t.lookup(Complex::new(0.5, 0.0)), kept);
    }
}
