//! Canonical storage of complex edge weights.
//!
//! Decision diagram canonicity requires that two numerically equal edge
//! weights are represented by the *same* handle, so that node hashing and
//! unique-table lookups work on exact integer identifiers rather than on
//! floating point values. The [`ComplexTable`] interns every complex value
//! that appears as an edge weight and hands out stable [`ComplexId`]s.
//! Values that differ by less than the table tolerance map to the same id,
//! which absorbs floating point round-off accumulated during decision diagram
//! operations (the approach of the JKU DD package, cf. Zulehner et al.,
//! ICCAD 2019).

use std::collections::HashMap;

use crate::complex::Complex;

/// Handle to an interned complex value inside a [`ComplexTable`].
///
/// Ids are only meaningful for the table that produced them. The two most
/// common weights have fixed ids: [`ComplexId::ZERO`] and [`ComplexId::ONE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComplexId(pub(crate) u32);

impl ComplexId {
    /// The id of the value `0`.
    pub const ZERO: ComplexId = ComplexId(0);
    /// The id of the value `1`.
    pub const ONE: ComplexId = ComplexId(1);

    /// Returns `true` when this id refers to the value `0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == ComplexId::ZERO
    }

    /// Returns `true` when this id refers to the value `1`.
    #[inline]
    pub fn is_one(self) -> bool {
        self == ComplexId::ONE
    }

    /// Raw index of the interned value (mainly useful for statistics).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Default tolerance under which two complex values are considered equal.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Interning table for complex edge weights with tolerance-based lookup.
///
/// # Examples
///
/// ```
/// use qsdd_dd::{Complex, ComplexTable};
///
/// let mut table = ComplexTable::new();
/// let a = table.lookup(Complex::new(0.5, 0.0));
/// let b = table.lookup(Complex::new(0.5 + 1e-13, 0.0));
/// assert_eq!(a, b); // identical within tolerance
/// ```
#[derive(Debug)]
pub struct ComplexTable {
    values: Vec<Complex>,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    tolerance: f64,
    lookups: u64,
    hits: u64,
}

impl Clone for ComplexTable {
    fn clone(&self) -> Self {
        ComplexTable {
            values: self.values.clone(),
            buckets: self.buckets.clone(),
            tolerance: self.tolerance,
            lookups: self.lookups,
            hits: self.hits,
        }
    }

    // Hand-rolled so that re-seating a long-lived execution context onto a
    // new program template reuses the existing allocations.
    fn clone_from(&mut self, source: &Self) {
        self.values.clone_from(&source.values);
        self.buckets.clone_from(&source.buckets);
        self.tolerance = source.tolerance;
        self.lookups = source.lookups;
        self.hits = source.hits;
    }
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table with a custom equality tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not strictly positive.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        let mut table = ComplexTable {
            values: Vec::with_capacity(64),
            buckets: HashMap::new(),
            tolerance,
            lookups: 0,
            hits: 0,
        };
        // Insert 0 and 1 at the fixed positions expected by ComplexId.
        let zero = table.insert(Complex::ZERO);
        let one = table.insert(Complex::ONE);
        debug_assert_eq!(zero, ComplexId::ZERO);
        debug_assert_eq!(one, ComplexId::ONE);
        table
    }

    /// The equality tolerance of this table.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of distinct values currently interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when only the two default entries (0 and 1) exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// Returns the interned value for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[inline]
    pub fn value(&self, id: ComplexId) -> Complex {
        self.values[id.0 as usize]
    }

    /// Interns `value`, returning the id of an existing entry within
    /// tolerance if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains NaN components.
    pub fn lookup(&mut self, value: Complex) -> ComplexId {
        assert!(!value.is_nan(), "cannot intern NaN complex value");
        self.lookups += 1;
        // Values within tolerance of the canonical 0/1 snap to them so that
        // the fast-path identities (is_zero / is_one) stay reliable.
        if value.approx_eq(Complex::ZERO, self.tolerance) {
            self.hits += 1;
            return ComplexId::ZERO;
        }
        if value.approx_eq(Complex::ONE, self.tolerance) {
            self.hits += 1;
            return ComplexId::ONE;
        }
        if let Some(found) = self.find(value) {
            self.hits += 1;
            return found;
        }
        self.insert(value)
    }

    /// Looks up the product of two interned values.
    pub fn mul(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() || b.is_zero() {
            return ComplexId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.lookup(v)
    }

    /// Looks up the sum of two interned values.
    pub fn add(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.lookup(v)
    }

    /// Looks up the difference of two interned values.
    pub fn sub(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if b.is_zero() {
            return a;
        }
        let v = self.value(a) - self.value(b);
        self.lookup(v)
    }

    /// Looks up the quotient of two interned values.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the zero id.
    pub fn div(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return ComplexId::ONE;
        }
        let v = self.value(a) / self.value(b);
        self.lookup(v)
    }

    /// Looks up the complex conjugate of an interned value.
    pub fn conj(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let v = self.value(a).conj();
        self.lookup(v)
    }

    /// Looks up the negation of an interned value.
    pub fn neg(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() {
            return a;
        }
        let v = -self.value(a);
        self.lookup(v)
    }

    /// Squared magnitude of an interned value.
    #[inline]
    pub fn norm_sqr(&self, a: ComplexId) -> f64 {
        self.value(a).norm_sqr()
    }

    /// Lookup statistics `(lookups, hits)` since table creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Forgets every value interned after the first `len` entries, keeping
    /// the bucket map's allocations for reuse.
    ///
    /// Ids `>= len` become dangling; the caller ([`crate::DdPackage`]'s
    /// transient reset) guarantees nothing references them afterwards.
    pub(crate) fn truncate(&mut self, len: usize) {
        if self.values.len() <= len {
            return;
        }
        for idx in len..self.values.len() {
            let key = self.key(self.values[idx]);
            if let Some(bucket) = self.buckets.get_mut(&key) {
                // Ids within a bucket are in insertion order, so everything
                // to drop sits in the tail. Emptied buckets are removed
                // outright: transient values differ from run to run, and
                // leaving empty entries behind would grow the bucket map
                // without bound across a long shot loop.
                let keep = bucket.partition_point(|&i| (i as usize) < len);
                if keep == 0 {
                    self.buckets.remove(&key);
                } else {
                    bucket.truncate(keep);
                }
            }
        }
        self.values.truncate(len);
    }

    fn key(&self, value: Complex) -> (i64, i64) {
        // A bucket spans several tolerances so that near-boundary values only
        // require inspecting the immediate neighbour buckets.
        let cell = self.tolerance * 4.0;
        (
            (value.re / cell).round() as i64,
            (value.im / cell).round() as i64,
        )
    }

    fn find(&self, value: Complex) -> Option<ComplexId> {
        let (kr, ki) = self.key(value);
        for dr in -1..=1 {
            for di in -1..=1 {
                if let Some(candidates) = self.buckets.get(&(kr + dr, ki + di)) {
                    for &idx in candidates {
                        if self.values[idx as usize].approx_eq(value, self.tolerance) {
                            return Some(ComplexId(idx));
                        }
                    }
                }
            }
        }
        None
    }

    fn insert(&mut self, value: Complex) -> ComplexId {
        let idx = self.values.len() as u32;
        self.values.push(value);
        let key = self.key(value);
        self.buckets.entry(key).or_default().push(idx);
        ComplexId(idx)
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        ComplexTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_have_fixed_ids() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::ONE), ComplexId::ONE);
        assert!(t.lookup(Complex::new(1e-14, -1e-14)).is_zero());
        assert!(t.lookup(Complex::new(1.0 + 1e-14, 0.0)).is_one());
    }

    #[test]
    fn nearby_values_share_an_id() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.25, -0.75));
        let b = t.lookup(Complex::new(0.25 + 1e-12, -0.75 - 1e-12));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.5, 0.0));
        let b = t.lookup(Complex::new(0.5, 0.5));
        let c = t.lookup(Complex::new(-0.5, 0.0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn boundary_values_near_bucket_edges_still_dedupe() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        // Choose a value right at a bucket boundary (cell = 4 * tol).
        let v = Complex::new(2.0e-10, 0.0);
        let a = t.lookup(v);
        let b = t.lookup(Complex::new(2.0e-10 + 0.9e-10, 0.0));
        // These differ by less than the tolerance? No: 0.9e-10 < 1e-10, so yes.
        assert_eq!(a, b);
    }

    #[test]
    fn arithmetic_helpers_match_direct_computation() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        let b = t.lookup(Complex::new(-0.1, 0.9));
        let prod = t.mul(a, b);
        assert!(t
            .value(prod)
            .approx_eq(Complex::new(0.3, 0.4) * Complex::new(-0.1, 0.9), 1e-12));
        let sum = t.add(a, b);
        assert!(t.value(sum).approx_eq(Complex::new(0.2, 1.3), 1e-12));
        let quot = t.div(prod, b);
        assert_eq!(quot, a);
        let conj = t.conj(a);
        assert!(t.value(conj).approx_eq(Complex::new(0.3, -0.4), 1e-12));
    }

    #[test]
    fn mul_fast_paths() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        assert_eq!(t.mul(ComplexId::ZERO, a), ComplexId::ZERO);
        assert_eq!(t.mul(a, ComplexId::ZERO), ComplexId::ZERO);
        assert_eq!(t.mul(ComplexId::ONE, a), a);
        assert_eq!(t.mul(a, ComplexId::ONE), a);
        assert_eq!(t.div(a, a), ComplexId::ONE);
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn division_by_zero_panics() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.3, 0.4));
        let _ = t.div(a, ComplexId::ZERO);
    }

    #[test]
    fn table_does_not_grow_for_repeated_values() {
        let mut t = ComplexTable::new();
        for _ in 0..1000 {
            t.lookup(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
        }
        assert_eq!(t.len(), 3);
        let (lookups, hits) = t.stats();
        assert_eq!(lookups, 1000);
        assert_eq!(hits, 999);
    }
}
