//! Dense 2x2 complex matrices.
//!
//! These are the "base" matrices from which gate decision diagrams are built:
//! every single-qubit gate and every Kraus operator used by the noise models
//! is a [`Matrix2`]. Multi-qubit operators are assembled by the decision
//! diagram package from such factors (Kronecker products plus the
//! controlled-gate decomposition).

use crate::complex::{Complex, FRAC_1_SQRT_2};

/// A dense 2x2 complex matrix in row-major order (`m[row][col]`).
///
/// # Examples
///
/// ```
/// use qsdd_dd::{Complex, Matrix2};
///
/// let h = Matrix2::hadamard();
/// let hh = h.matmul(&h);
/// assert!(hh.approx_eq(&Matrix2::identity(), 1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Matrix2(pub [[Complex; 2]; 2]);

impl Matrix2 {
    /// Creates a matrix from four entries, row-major.
    #[inline]
    pub const fn new(m00: Complex, m01: Complex, m10: Complex, m11: Complex) -> Self {
        Matrix2([[m00, m01], [m10, m11]])
    }

    /// Creates a matrix from four real entries.
    pub const fn from_real(m00: f64, m01: f64, m10: f64, m11: f64) -> Self {
        Matrix2([
            [Complex::real(m00), Complex::real(m01)],
            [Complex::real(m10), Complex::real(m11)],
        ])
    }

    /// The 2x2 identity matrix.
    pub const fn identity() -> Self {
        Matrix2::from_real(1.0, 0.0, 0.0, 1.0)
    }

    /// The all-zero matrix.
    pub const fn zero() -> Self {
        Matrix2::from_real(0.0, 0.0, 0.0, 0.0)
    }

    /// The Pauli-X (NOT) matrix.
    pub const fn pauli_x() -> Self {
        Matrix2::from_real(0.0, 1.0, 1.0, 0.0)
    }

    /// The Pauli-Y matrix.
    pub const fn pauli_y() -> Self {
        Matrix2::new(
            Complex::ZERO,
            Complex::new(0.0, -1.0),
            Complex::new(0.0, 1.0),
            Complex::ZERO,
        )
    }

    /// The Pauli-Z matrix.
    pub const fn pauli_z() -> Self {
        Matrix2::from_real(1.0, 0.0, 0.0, -1.0)
    }

    /// The Hadamard matrix.
    pub const fn hadamard() -> Self {
        Matrix2::from_real(FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2)
    }

    /// The phase gate `S = diag(1, i)`.
    pub const fn s_gate() -> Self {
        Matrix2::new(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::new(0.0, 1.0),
        )
    }

    /// The inverse phase gate `S† = diag(1, -i)`.
    pub const fn sdg_gate() -> Self {
        Matrix2::new(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::new(0.0, -1.0),
        )
    }

    /// The T gate `diag(1, e^{i pi/4})`.
    pub fn t_gate() -> Self {
        Matrix2::phase(std::f64::consts::FRAC_PI_4)
    }

    /// The inverse T gate `diag(1, e^{-i pi/4})`.
    pub fn tdg_gate() -> Self {
        Matrix2::phase(-std::f64::consts::FRAC_PI_4)
    }

    /// The square-root-of-X gate.
    pub fn sx_gate() -> Self {
        let p = Complex::new(0.5, 0.5);
        let m = Complex::new(0.5, -0.5);
        Matrix2::new(p, m, m, p)
    }

    /// The phase gate `diag(1, e^{i lambda})` (OpenQASM `u1`/`p`).
    pub fn phase(lambda: f64) -> Self {
        Matrix2::new(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(1.0, lambda),
        )
    }

    /// Rotation about the X axis by angle `theta`.
    pub fn rx(theta: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Matrix2::new(
            Complex::real(c),
            Complex::new(0.0, -s),
            Complex::new(0.0, -s),
            Complex::real(c),
        )
    }

    /// Rotation about the Y axis by angle `theta`.
    pub fn ry(theta: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Matrix2::from_real(c, -s, s, c)
    }

    /// Rotation about the Z axis by angle `theta`.
    pub fn rz(theta: f64) -> Self {
        Matrix2::new(
            Complex::from_polar(1.0, -theta / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(1.0, theta / 2.0),
        )
    }

    /// The general single-qubit gate `U(theta, phi, lambda)` (OpenQASM `u3`).
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Matrix2::new(
            Complex::real(c),
            -Complex::from_polar(s, lambda),
            Complex::from_polar(s, phi),
            Complex::from_polar(c, phi + lambda),
        )
    }

    /// The amplitude-damping Kraus operator `A0 = [[0, sqrt(p)], [0, 0]]`.
    ///
    /// Applying `A0` maps `|1>` to `sqrt(p) |0>`: the qubit relaxes to the
    /// ground state.
    pub fn amplitude_damping_a0(p: f64) -> Self {
        Matrix2::from_real(0.0, p.sqrt(), 0.0, 0.0)
    }

    /// The amplitude-damping Kraus operator `A1 = [[1, 0], [0, sqrt(1-p)]]`.
    pub fn amplitude_damping_a1(p: f64) -> Self {
        Matrix2::from_real(1.0, 0.0, 0.0, (1.0 - p).sqrt())
    }

    /// The projector onto `|0>`.
    pub const fn projector_zero() -> Self {
        Matrix2::from_real(1.0, 0.0, 0.0, 0.0)
    }

    /// The projector onto `|1>`.
    pub const fn projector_one() -> Self {
        Matrix2::from_real(0.0, 0.0, 0.0, 1.0)
    }

    /// Returns entry `(row, col)`.
    #[inline]
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        self.0[row][col]
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix2) -> Matrix2 {
        let mut out = Matrix2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[r][0] * rhs.0[0][c] + self.0[r][1] * rhs.0[1][c];
            }
        }
        out
    }

    /// Matrix–vector product `self * v` for a length-2 vector.
    pub fn apply(&self, v: [Complex; 2]) -> [Complex; 2] {
        [
            self.0[0][0] * v[0] + self.0[0][1] * v[1],
            self.0[1][0] * v[0] + self.0[1][1] * v[1],
        ]
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix2 {
        Matrix2::new(
            self.0[0][0].conj(),
            self.0[1][0].conj(),
            self.0[0][1].conj(),
            self.0[1][1].conj(),
        )
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix2) -> Matrix2 {
        let mut out = Matrix2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[r][c] + rhs.0[r][c];
            }
        }
        out
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix2) -> Matrix2 {
        let mut out = Matrix2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[r][c] - rhs.0[r][c];
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: Complex) -> Matrix2 {
        let mut out = Matrix2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[r][c] * s;
            }
        }
        out
    }

    /// Returns `true` when every entry is within `eps` of `rhs`.
    pub fn approx_eq(&self, rhs: &Matrix2, eps: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.0[r][c].approx_eq(rhs.0[r][c], eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when the matrix is unitary up to tolerance `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        self.matmul(&self.adjoint())
            .approx_eq(&Matrix2::identity(), eps)
    }

    /// Returns `true` when the matrix equals the identity up to tolerance
    /// `eps` (exactly, not up to a global phase).
    pub fn is_identity(&self, eps: f64) -> bool {
        self.approx_eq(&Matrix2::identity(), eps)
    }

    /// Returns `true` when the matrix is `e^{i alpha} * I` for some global
    /// phase `alpha`, up to tolerance `eps`.
    ///
    /// A gate with such a matrix acts trivially when uncontrolled (the phase
    /// is global), but *not* when controls are attached (the phase becomes
    /// relative); callers must check the control set before dropping it.
    pub fn is_identity_up_to_phase(&self, eps: f64) -> bool {
        self.0[0][1].abs() < eps
            && self.0[1][0].abs() < eps
            && (self.0[0][0] - self.0[1][1]).abs() < eps
            && (self.0[0][0].abs() - 1.0).abs() < eps
    }
}

impl Default for Matrix2 {
    fn default() -> Self {
        Matrix2::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_matrices_are_unitary_and_involutive() {
        for m in [Matrix2::pauli_x(), Matrix2::pauli_y(), Matrix2::pauli_z()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.matmul(&m).approx_eq(&Matrix2::identity(), 1e-12));
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Matrix2::hadamard();
        assert!(h.is_unitary(1e-12));
        assert!(h.matmul(&h).approx_eq(&Matrix2::identity(), 1e-12));
    }

    #[test]
    fn y_equals_i_x_z() {
        let ixz = Matrix2::pauli_x()
            .matmul(&Matrix2::pauli_z())
            .scale(Complex::I);
        assert!(ixz.approx_eq(&Matrix2::pauli_y(), 1e-12));
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        let s2 = Matrix2::s_gate().matmul(&Matrix2::s_gate());
        assert!(s2.approx_eq(&Matrix2::pauli_z(), 1e-12));
        let t2 = Matrix2::t_gate().matmul(&Matrix2::t_gate());
        assert!(t2.approx_eq(&Matrix2::s_gate(), 1e-12));
    }

    #[test]
    fn sx_squares_to_x() {
        let sx2 = Matrix2::sx_gate().matmul(&Matrix2::sx_gate());
        assert!(sx2.approx_eq(&Matrix2::pauli_x(), 1e-12));
    }

    #[test]
    fn rotations_at_pi_match_paulis_up_to_phase() {
        // RX(pi) = -i X
        let rx = Matrix2::rx(std::f64::consts::PI);
        let expected = Matrix2::pauli_x().scale(Complex::new(0.0, -1.0));
        assert!(rx.approx_eq(&expected, 1e-12));
        // RZ(pi) = -i Z
        let rz = Matrix2::rz(std::f64::consts::PI);
        let expected = Matrix2::pauli_z().scale(Complex::new(0.0, -1.0));
        assert!(rz.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // u3(0, 0, lambda) = phase(lambda)
        let lam = 0.7;
        assert!(Matrix2::u3(0.0, 0.0, lam).approx_eq(&Matrix2::phase(lam), 1e-12));
        // u3(pi/2, 0, pi) = H
        let u = Matrix2::u3(std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI);
        assert!(u.approx_eq(&Matrix2::hadamard(), 1e-12));
    }

    #[test]
    fn amplitude_damping_kraus_completeness() {
        let p = 0.37;
        let a0 = Matrix2::amplitude_damping_a0(p);
        let a1 = Matrix2::amplitude_damping_a1(p);
        let sum = a0.adjoint().matmul(&a0).add(&a1.adjoint().matmul(&a1));
        assert!(sum.approx_eq(&Matrix2::identity(), 1e-12));
    }

    #[test]
    fn adjoint_and_apply() {
        let m = Matrix2::u3(0.3, 0.8, -0.2);
        let v = [Complex::new(0.6, 0.1), Complex::new(-0.3, 0.7)];
        let w = m.apply(v);
        // <Mv, Mv> == <v, M†Mv> == <v, v> for unitary M.
        let n_in = v[0].norm_sqr() + v[1].norm_sqr();
        let n_out = w[0].norm_sqr() + w[1].norm_sqr();
        assert!((n_in - n_out).abs() < 1e-12);
    }

    #[test]
    fn identity_predicates_distinguish_phases() {
        assert!(Matrix2::identity().is_identity(1e-12));
        assert!(Matrix2::identity().is_identity_up_to_phase(1e-12));
        let phased = Matrix2::identity().scale(Complex::from_polar(1.0, 0.7));
        assert!(!phased.is_identity(1e-12));
        assert!(phased.is_identity_up_to_phase(1e-12));
        assert!(!Matrix2::pauli_x().is_identity_up_to_phase(1e-12));
        assert!(!Matrix2::pauli_z().is_identity_up_to_phase(1e-12));
    }

    #[test]
    fn projectors_sum_to_identity() {
        let sum = Matrix2::projector_zero().add(&Matrix2::projector_one());
        assert!(sum.approx_eq(&Matrix2::identity(), 1e-12));
    }
}
