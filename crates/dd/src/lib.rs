//! # qsdd-dd — decision diagrams for quantum simulation
//!
//! This crate implements the decision diagram (DD) package underlying the
//! stochastic quantum circuit simulator of Grurl et al., *Stochastic Quantum
//! Circuit Simulation Using Decision Diagrams* (DATE 2021).
//!
//! Quantum states (`2^n` amplitude vectors) and quantum operations
//! (`2^n x 2^n` unitary or Kraus matrices) are represented as rooted, edge-
//! weighted decision diagrams:
//!
//! * a **vector node** splits the amplitude vector on one qubit into the
//!   `|0>` and `|1>` halves,
//! * a **matrix node** splits an operator into four quadrants,
//! * identical sub-diagrams are stored once (hash-consing through unique
//!   tables), and common factors are pulled into edge weights, which are
//!   interned in a tolerance-bucketed [`ComplexTable`].
//!
//! On structured states (GHZ, QFT outputs, basis states, product states) the
//! representation is linear in the number of qubits rather than exponential,
//! which is what the paper exploits to scale stochastic noise simulation to
//! dozens of qubits.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_dd::{DdPackage, Matrix2};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Build a Bell state and sample a measurement from it.
//! let mut dd = DdPackage::new();
//! let state = dd.zero_state(2);
//! let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
//! let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
//! let state = dd.mat_vec_mul(h, state);
//! let state = dd.mat_vec_mul(cx, state);
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = dd.sample_measurement(state, 2, &mut rng);
//! assert!(outcome == 0b00 || outcome == 0b11);
//! ```
//!
//! The crate deliberately exposes a low-level API (states are [`VecEdge`]
//! handles tied to a [`DdPackage`]); the `qsdd-core` crate wraps it in the
//! circuit-level simulator described in the paper.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod complex_table;
mod concurrent;
mod export;
mod intra;
mod measure;
mod node;
mod ops;
mod package;

pub mod fxhash;
pub mod matrix2;

pub use complex::{Complex, FRAC_1_SQRT_2};
pub use complex_table::{ComplexId, ComplexTable, DEFAULT_TOLERANCE};
pub use intra::IntraPool;
pub use matrix2::Matrix2;
pub use measure::SamplePlan;
pub use node::{MatEdge, MatNode, MatNodeId, VecEdge, VecNode, VecNodeId};
pub use package::{DdPackage, PackageStats, TableStats, DEFAULT_CACHE_LIMIT};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<DdPackage>();
        assert_sync::<DdPackage>();
        assert_send::<VecEdge>();
        assert_send::<MatEdge>();
        assert_send::<Complex>();
    }
}
