//! A minimal multiply-xor hasher for the package's hot hash maps.
//!
//! The standard library's default hasher (SipHash) is a keyed PRF built to
//! resist collision attacks from untrusted keys; the decision diagram
//! package hashes *trusted, tiny* keys (node structures, id pairs,
//! quantised complex coordinates) millions of times per shot, where
//! SipHash's per-key setup dominates. This is the well-known FxHash
//! construction (rotate, xor, multiply by a large odd constant), which is a
//! few instructions per word and plenty good for the short structured keys
//! used here. The module is public so that the higher layers (`qsdd-core`'s
//! dedup maps, the `qsdd-server` content-addressed result cache) share one
//! hasher definition instead of three copies.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the FxHash construction (a large odd constant with a
/// good bit mix; the same one used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted in-process keys.
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (index, &byte) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(byte) << (8 * index);
        }
        if !chunks.remainder().is_empty() {
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast in-process hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the fast in-process hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal_and_near_keys_differ() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        let a = vec![(3u32, 1u8), (9, 0)];
        let b = vec![(3u32, 1u8), (9, 1)];
        assert_eq!(hash_of(&a), hash_of(&a.clone()));
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn node_keys_spread_across_buckets() {
        use std::collections::HashSet;
        let buckets: HashSet<u64> = (0..1024u64).map(|v| hash_of(&v) % 64).collect();
        assert!(buckets.len() > 32, "node hashes clump: {}", buckets.len());
    }
}
