//! A small, dependency-free complex number type used throughout the decision
//! diagram package.
//!
//! Edge weights, amplitudes, and gate matrix entries are all [`Complex`]
//! values. The type intentionally mirrors the subset of functionality the
//! simulator needs (arithmetic, conjugation, magnitude) instead of pulling in
//! a full numerics crate.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with double-precision real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qsdd_dd::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(0.5, -1.0);
/// let c = a * b;
/// assert!((c.re - 2.5).abs() < 1e-12);
/// assert!((c.im - 0.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i*theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns the squared magnitude `|z|^2 = re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies the number by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both components are within `eps` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Returns `true` when the value is exactly zero in both components.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// Returns `true` when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is zero (division by zero otherwise
    /// yields infinities, as for `f64`).
    #[inline]
    pub fn recip(self) -> Self {
        debug_assert!(!self.is_zero(), "attempted to invert a zero complex value");
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Principal square root of the complex number.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// The inverse square root of two, `1/sqrt(2)`, the Hadamard normalisation
/// factor.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_and_reciprocal_invert_multiplication() {
        let a = Complex::new(0.3, -0.7);
        let b = Complex::new(-1.2, 0.4);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-12));
        assert!((a * a.recip()).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-1.0, 0.5);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-12));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(0.5, 0.25).to_string(), "0.5+0.25i");
    }

    #[test]
    fn zero_and_one_constants() {
        assert!(Complex::ZERO.is_zero());
        assert!(!Complex::ONE.is_zero());
        assert_eq!(Complex::ONE * Complex::I, Complex::I);
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }
}
