//! A small hand-rolled fork-join pool for intra-shot parallelism.
//!
//! The diagram traversals in [`ops`](crate::ops) and the dense statevector
//! kernels both decompose into two independent halves at every level, so
//! the only primitive needed is a scoped [`join`](IntraPool::join): run two
//! closures, possibly on different threads, and return both results. The
//! pool is deliberately tiny — a shared injector queue, `threads - 1`
//! workers (the caller is the remaining worker), and stack-allocated job
//! records — because the recursion itself provides all the load balancing:
//! each fork level doubles the number of outstanding jobs, and the
//! [`fork_budget`](IntraPool::fork_budget) cutoff stops forking once every
//! thread has work.
//!
//! ## Why not a library?
//!
//! The workspace builds offline with no registry access, so rayon is out of
//! reach; and the determinism contract (byte-identical results regardless
//! of `intra_threads`) is easier to audit against eighty lines of queue
//! than against a work-stealing scheduler. Panics in forked closures are
//! captured and re-raised on the joining thread, matching `rayon::join`.
//!
//! ## Safety protocol
//!
//! Jobs live on the forking thread's stack and are pushed into the queue by
//! raw pointer. The joiner never returns (or unwinds) while the queue still
//! holds its job: it either reclaims the job from the queue and runs it
//! inline, or — when a worker already popped it — helps run other jobs
//! until the worker flags completion. The closure run inline is wrapped in
//! `catch_unwind` for the same reason: an unwind must not escape while a
//! sibling stack job is still reachable from the queue.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Type-erased pointer to a [`StackJob`] plus its executor thunk.
struct JobRef {
    ptr: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointee is a `StackJob` whose closure is `Send`; the join
// protocol guarantees the pointee outlives every access through this ref.
unsafe impl Send for JobRef {}

/// A forked closure living on the forking thread's stack.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    done: AtomicBool,
}

impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            panic: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    fn as_ref(&self) -> JobRef {
        JobRef {
            ptr: self as *const Self as *const (),
            run: Self::execute,
        }
    }

    /// Runs the job through its erased pointer. Called exactly once, either
    /// by a worker that popped the ref or by the joiner after reclaiming it.
    unsafe fn execute(ptr: *const ()) {
        let job = &*(ptr as *const Self);
        let func = (*job.func.get()).take().expect("job executed twice");
        match catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => *job.result.get() = Some(value),
            Err(payload) => *job.panic.get() = Some(payload),
        }
        job.done.store(true, Ordering::Release);
    }
}

/// Queue state shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<JobRef>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop(&self) -> Option<JobRef> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Removes `ptr`'s job from the queue if no worker claimed it yet.
    fn reclaim(&self, ptr: *const ()) -> bool {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = queue.iter().position(|job| job.ptr == ptr) {
            queue.remove(pos);
            true
        } else {
            false
        }
    }
}

/// A scoped fork-join worker pool shared by the diagram and dense kernels
/// of one simulation context (or borrowed by several idle shot workers).
pub struct IntraPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl IntraPool {
    /// Creates a pool that runs work on `threads` threads in total: the
    /// calling thread plus `threads - 1` background workers. `threads` is
    /// clamped to at least 1; a 1-thread pool spawns nothing and
    /// [`join`](Self::join) degenerates to two sequential calls.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qsdd-intra-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn intra worker")
            })
            .collect();
        IntraPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total number of threads that execute work (callers + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many fork levels keep all threads busy: `log2(threads) + 2`.
    /// Forking deeper than this only adds queue traffic; the recursion
    /// below the budget runs serially.
    pub fn fork_budget(&self) -> u32 {
        if self.threads <= 1 {
            0
        } else {
            (usize::BITS - 1 - self.threads.leading_zeros()) + 2
        }
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// `b` is offered to the pool while the calling thread runs `a`; if no
    /// worker picks `b` up in time, the caller reclaims and runs it inline,
    /// so progress never depends on the pool having free threads. A panic
    /// in either closure resumes on the calling thread (`a`'s first).
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            return (a(), b());
        }
        let job = StackJob::new(b);
        let job_ref = job.as_ref();
        let (job_ptr, job_run) = (job_ref.ptr, job_ref.run);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(job_ref);
        }
        self.shared.ready.notify_one();

        let result_a = catch_unwind(AssertUnwindSafe(a));

        if self.shared.reclaim(job_ptr) {
            // SAFETY: reclaim removed the sole queue ref, so we are the
            // only executor and the job is alive on our stack.
            unsafe { job_run(job_ptr) };
        } else {
            // A worker owns the job; help with other work until it lands.
            while !job.done.load(Ordering::Acquire) {
                match self.shared.pop() {
                    // SAFETY: popping transfers sole execution rights, and
                    // the job's joiner keeps it alive until `done`.
                    Some(other) => unsafe { (other.run)(other.ptr) },
                    None => std::thread::yield_now(),
                }
            }
        }

        let value_a = match result_a {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        };
        // SAFETY: the job finished (run inline above or `done` observed with
        // Acquire), so no other thread touches these cells.
        if let Some(payload) = unsafe { (*job.panic.get()).take() } {
            resume_unwind(payload);
        }
        let value_b = unsafe { (*job.result.get()).take() }.expect("forked job lost its result");
        (value_a, value_b)
    }

    /// Applies `body` to every chunk index in `0..chunks`, splitting the
    /// range over the pool via recursive joins. Chunk indices — and thus
    /// any chunk-indexed output the caller merges afterwards — are a fixed
    /// partition independent of thread count, which is what keeps
    /// floating-point reductions byte-identical across `intra_threads`.
    pub fn for_each_chunk(&self, chunks: usize, body: &(impl Fn(usize) + Sync)) {
        fn split(pool: &IntraPool, lo: usize, hi: usize, body: &(impl Fn(usize) + Sync)) {
            match hi - lo {
                0 => {}
                1 => body(lo),
                _ => {
                    let mid = lo + (hi - lo) / 2;
                    pool.join(|| split(pool, lo, mid, body), || split(pool, mid, hi, body));
                }
            }
        }
        split(self, 0, chunks, body);
    }
}

impl std::fmt::Debug for IntraPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntraPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for IntraPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            // SAFETY: popping the ref grants sole execution rights; the
            // joiner keeps the stack job alive until `done` is set.
            Some(job) => unsafe { (job.run)(job.ptr) },
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results_in_order() {
        let pool = IntraPool::new(4);
        let (a, b) = pool.join(|| 2 + 2, || "forked".len());
        assert_eq!((a, b), (4, 6));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = IntraPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.fork_budget(), 0);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn nested_joins_sum_a_tree() {
        fn tree_sum(pool: &IntraPool, lo: u64, hi: u64, depth: u32) -> u64 {
            if depth == 0 || hi - lo < 2 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = pool.join(
                    || tree_sum(pool, lo, mid, depth - 1),
                    || tree_sum(pool, mid, hi, depth - 1),
                );
                a + b
            }
        }
        let pool = IntraPool::new(8);
        let n = 100_000;
        assert_eq!(tree_sum(&pool, 0, n, pool.fork_budget()), n * (n - 1) / 2);
    }

    #[test]
    fn for_each_chunk_visits_every_index_once() {
        let pool = IntraPool::new(4);
        let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_chunk(37, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn panics_propagate_to_the_joiner() {
        let pool = IntraPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> u32 { panic!("forked failure") });
        }));
        assert!(caught.is_err());
        // The pool stays usable after a propagated panic.
        let (a, b) = pool.join(|| 10, || 20);
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn fork_budget_scales_with_threads() {
        assert_eq!(IntraPool::new(1).fork_budget(), 0);
        assert_eq!(IntraPool::new(2).fork_budget(), 3);
        assert_eq!(IntraPool::new(8).fork_budget(), 5);
    }
}
