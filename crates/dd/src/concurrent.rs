//! Concurrency-ready storage for the decision diagram package.
//!
//! Two building blocks live here:
//!
//! * [`ChunkedArena`] — an append-only arena with stable addresses, so node
//!   records can be pushed from several worker threads (each reserving its
//!   slot with a fetch-add) while readers hold plain `&T` references that
//!   are never invalidated by growth. Storage is a spine of geometrically
//!   growing buckets; no push ever moves an existing element, unlike
//!   `Vec`'s reallocation.
//! * [`StripedMap`] — a hash map split into [`STRIPES`] independently locked
//!   shards. Keys are routed by their (Fx) hash, so two threads touching
//!   different nodes almost always take different locks. Serial code paths
//!   (`&mut self` on the package) bypass the locks entirely through
//!   `get_mut`, keeping the single-threaded cost at one branch.
//!
//! Both types are only ever *published* through a stripe lock or an
//! exclusive borrow: a node id becomes visible to other threads only via a
//! `StripedMap` insert performed while holding the stripe lock, which gives
//! the necessary happens-before edge for the arena write that produced it.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Mutex, MutexGuard};

use crate::fxhash::{FxBuildHasher, FxHashMap};

/// log2 of the first bucket's capacity (4096 entries).
const BASE_SHIFT: u32 = 12;
/// Number of bucket slots; bucket `b` holds `2^(BASE_SHIFT + b)` entries,
/// enough to cover the full `u32` id space with room to spare.
const BUCKETS: usize = 24;

/// Append-only arena of `Copy` records with stable addresses.
pub(crate) struct ChunkedArena<T: Copy> {
    buckets: [AtomicPtr<T>; BUCKETS],
    len: AtomicUsize,
}

/// Maps a flat index to its (bucket, offset) coordinates.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    // Bucket b covers indices [2^BASE_SHIFT * (2^b - 1), 2^BASE_SHIFT * (2^(b+1) - 1)).
    let k = (index >> BASE_SHIFT) + 1;
    let b = (usize::BITS - 1 - k.leading_zeros()) as usize;
    let offset = index - (((1usize << b) - 1) << BASE_SHIFT);
    (b, offset)
}

/// Capacity of bucket `b`.
#[inline]
fn bucket_capacity(b: usize) -> usize {
    1usize << (BASE_SHIFT + b as u32)
}

impl<T: Copy> ChunkedArena<T> {
    /// Creates an empty arena. No bucket is allocated until the first push.
    pub(crate) fn new() -> Self {
        ChunkedArena {
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of records ever pushed (net of [`truncate`](Self::truncate)).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns the bucket base pointer, allocating the bucket on first use.
    fn bucket_ptr(&self, b: usize) -> *mut T {
        let slot = &self.buckets[b];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        let cap = bucket_capacity(b);
        let layout = std::alloc::Layout::array::<T>(cap).expect("bucket layout");
        // SAFETY: `T` is `Copy` (no drop glue); the memory is written before
        // any index inside it is published to a reader.
        let fresh = unsafe { std::alloc::alloc(layout) as *mut T };
        assert!(!fresh.is_null(), "arena bucket allocation failed");
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh,
            Err(winner) => {
                // Another thread installed the bucket first; free ours.
                // SAFETY: `fresh` came from `alloc` with this exact layout
                // and was never shared.
                unsafe { std::alloc::dealloc(fresh as *mut u8, layout) };
                winner
            }
        }
    }

    /// Appends `value`, returning its index. Safe to call from several
    /// threads at once; each call reserves a distinct slot.
    pub(crate) fn push(&self, value: T) -> usize {
        let index = self.len.fetch_add(1, Ordering::Relaxed);
        let (b, offset) = locate(index);
        assert!(b < BUCKETS, "arena exhausted its id space");
        let base = self.bucket_ptr(b);
        // SAFETY: `offset < bucket_capacity(b)` by construction of `locate`,
        // and the fetch-add above makes this slot exclusively ours. The
        // value is published to other threads only through a subsequent
        // lock-protected map insert, which orders this write before any read.
        unsafe { base.add(offset).write(value) };
        index
    }

    /// Drops all records at index `new_len` and beyond. Buckets stay
    /// allocated for reuse; `T: Copy` means no destructors need to run.
    pub(crate) fn truncate(&mut self, new_len: usize) {
        let len = self.len.get_mut();
        if new_len < *len {
            *len = new_len;
        }
    }

    /// Iterates over the first `len()` records in index order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len()).map(move |i| self[i])
    }
}

impl<T: Copy> std::ops::Index<usize> for ChunkedArena<T> {
    type Output = T;

    #[inline]
    fn index(&self, index: usize) -> &T {
        debug_assert!(index < self.len(), "arena index {index} out of bounds");
        let (b, offset) = locate(index);
        let base = self.buckets[b].load(Ordering::Acquire);
        debug_assert!(!base.is_null());
        // SAFETY: any index below `len` that reached this thread was
        // published through a stripe lock (or an exclusive borrow), so the
        // slot write happens-before this read and the bucket is allocated.
        unsafe { &*base.add(offset) }
    }
}

impl<T: Copy> Drop for ChunkedArena<T> {
    fn drop(&mut self) {
        for (b, slot) in self.buckets.iter_mut().enumerate() {
            let ptr = *slot.get_mut();
            if !ptr.is_null() {
                let layout = std::alloc::Layout::array::<T>(bucket_capacity(b)).expect("layout");
                // SAFETY: allocated by `bucket_ptr` with this layout; `T` is
                // `Copy`, so the elements need no drop.
                unsafe { std::alloc::dealloc(ptr as *mut u8, layout) };
            }
        }
    }
}

impl<T: Copy> Clone for ChunkedArena<T> {
    fn clone(&self) -> Self {
        let fresh = ChunkedArena::new();
        for value in self.iter() {
            fresh.push(value);
        }
        fresh
    }

    fn clone_from(&mut self, source: &Self) {
        self.truncate(0);
        for value in source.iter() {
            self.push(value);
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for ChunkedArena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedArena")
            .field("len", &self.len())
            .finish()
    }
}

// SAFETY: records are `Copy` plain data; cross-thread publication of every
// index goes through a `Mutex`-protected map (see module docs).
unsafe impl<T: Copy + Send> Send for ChunkedArena<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for ChunkedArena<T> {}

/// Number of lock shards per [`StripedMap`]. Sixteen keeps the footprint
/// small while making same-stripe collisions rare for the worker counts the
/// intra-shot pool targets (2–16 threads).
pub(crate) const STRIPES: usize = 16;

/// A hash map sharded into [`STRIPES`] independently locked stripes.
///
/// The map can optionally *journal* insertions (see
/// [`begin_journal`](Self::begin_journal)): while journaling is active,
/// every key inserted through [`insert_logged`](Self::insert_logged) is
/// recorded, and [`rollback_journal`](Self::rollback_journal) removes those
/// keys again. The decision diagram package uses this to undo compute-cache
/// insertions made by a speculative parallel operation that has to be
/// re-run serially.
pub(crate) struct StripedMap<K, V> {
    stripes: [Mutex<FxHashMap<K, V>>; STRIPES],
    journals: [Mutex<Vec<K>>; STRIPES],
    journaling: AtomicBool,
    contention: AtomicU64,
}

impl<K: std::hash::Hash + Eq, V> StripedMap<K, V> {
    /// Creates an empty map.
    pub(crate) fn new() -> Self {
        StripedMap {
            stripes: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            journals: std::array::from_fn(|_| Mutex::new(Vec::new())),
            journaling: AtomicBool::new(false),
            contention: AtomicU64::new(0),
        }
    }

    /// Stripe index for `key` — the top bits of the Fx hash, which are the
    /// best-mixed after the final multiply.
    #[inline]
    fn stripe_of(key: &K) -> usize {
        use std::hash::BuildHasher;
        let hash = FxBuildHasher::default().hash_one(key);
        (hash >> 60) as usize & (STRIPES - 1)
    }

    /// Locks the stripe holding `key`, counting the acquisition as contended
    /// when another thread currently owns it.
    #[inline]
    pub(crate) fn lock_stripe(&self, key: &K) -> MutexGuard<'_, FxHashMap<K, V>> {
        let stripe = &self.stripes[Self::stripe_of(key)];
        match stripe.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                stripe.lock()
            }
        }
    }

    /// Exclusive (lock-free) access to the stripe holding `key`.
    #[inline]
    pub(crate) fn stripe_mut(&mut self, key: &K) -> &mut FxHashMap<K, V> {
        self.stripes[Self::stripe_of(key)].get_mut()
    }

    /// Total number of lock acquisitions that found the stripe held.
    pub(crate) fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Overwrites the contention counter (used by `clone_from` to preserve
    /// the destination's own statistics).
    pub(crate) fn set_contention(&self, value: u64) {
        self.contention.store(value, Ordering::Relaxed);
    }

    /// Number of entries across all stripes (exclusive access).
    pub(crate) fn len_mut(&mut self) -> usize {
        self.stripes.iter_mut().map(|s| s.get_mut().len()).sum()
    }

    /// Number of entries across all stripes, taking each stripe lock.
    pub(crate) fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Entries per stripe, in stripe order, without exclusive access.
    pub(crate) fn stripe_lens(&self) -> [usize; STRIPES] {
        std::array::from_fn(|i| self.stripes[i].lock().len())
    }

    /// Removes all entries (exclusive access).
    pub(crate) fn clear(&mut self) {
        for stripe in &mut self.stripes {
            stripe.get_mut().clear();
        }
    }

    /// Removes `key`, returning its value if present (exclusive access).
    pub(crate) fn remove(&mut self, key: &K) -> Option<V> {
        self.stripe_mut(key).remove(key)
    }
}

impl<K: std::hash::Hash + Eq + Copy, V> StripedMap<K, V> {
    /// Inserts `key -> value`, recording the key in the stripe's journal
    /// when journaling is active. Only first insertions are recorded — an
    /// overwrite of a key inserted earlier in the same journal window is
    /// already covered by the original record, and a key present *before*
    /// the window can never be overwritten by the package's cache
    /// discipline (inserts only follow a miss on the same key).
    pub(crate) fn insert_logged(&self, key: K, value: V) {
        let index = Self::stripe_of(&key);
        let stripe = &self.stripes[index];
        let mut guard = match stripe.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                stripe.lock()
            }
        };
        let fresh = guard.insert(key, value).is_none();
        drop(guard);
        if fresh && self.journaling.load(Ordering::Relaxed) {
            self.journals[index].lock().push(key);
        }
    }

    /// Starts recording insertions made through
    /// [`insert_logged`](Self::insert_logged).
    pub(crate) fn begin_journal(&self) {
        debug_assert!(!self.journaling.load(Ordering::Relaxed));
        self.journaling.store(true, Ordering::Relaxed);
    }

    /// Stops recording and keeps the recorded insertions.
    pub(crate) fn commit_journal(&mut self) {
        self.journaling.store(false, Ordering::Relaxed);
        for journal in &mut self.journals {
            journal.get_mut().clear();
        }
    }

    /// Stops recording and removes every key inserted since
    /// [`begin_journal`](Self::begin_journal).
    pub(crate) fn rollback_journal(&mut self) {
        self.journaling.store(false, Ordering::Relaxed);
        for index in 0..STRIPES {
            let keys = std::mem::take(self.journals[index].get_mut());
            let stripe = self.stripes[index].get_mut();
            for key in keys {
                stripe.remove(&key);
            }
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> Clone for StripedMap<K, V> {
    fn clone(&self) -> Self {
        StripedMap {
            stripes: std::array::from_fn(|i| Mutex::new(self.stripes[i].lock().clone())),
            journals: std::array::from_fn(|_| Mutex::new(Vec::new())),
            journaling: AtomicBool::new(false),
            contention: AtomicU64::new(self.contention()),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        for (dst, src) in self.stripes.iter_mut().zip(source.stripes.iter()) {
            dst.get_mut().clone_from(&src.lock());
        }
        // Contention is a property of this instance's history, not the
        // source's contents; leave it untouched.
    }
}

impl<K, V> std::fmt::Debug for StripedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedMap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_partitions_the_index_space() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(4095), (0, 4095));
        assert_eq!(locate(4096), (1, 0));
        assert_eq!(locate(4096 + 8191), (1, 8191));
        assert_eq!(locate(4096 + 8192), (2, 0));
        // Exhaustive continuity check over the first few buckets.
        let mut expected = (0usize, 0usize);
        for i in 0..(1usize << 16) {
            assert_eq!(locate(i), expected, "index {i}");
            expected.1 += 1;
            if expected.1 == bucket_capacity(expected.0) {
                expected = (expected.0 + 1, 0);
            }
        }
    }

    #[test]
    fn arena_push_index_truncate_round_trip() {
        let mut arena = ChunkedArena::new();
        for i in 0..10_000u64 {
            assert_eq!(arena.push(i * 3), i as usize);
        }
        assert_eq!(arena.len(), 10_000);
        assert_eq!(arena[0], 0);
        assert_eq!(arena[9_999], 9_999 * 3);
        arena.truncate(5_000);
        assert_eq!(arena.len(), 5_000);
        assert_eq!(arena.push(7), 5_000);
        assert_eq!(arena[5_000], 7);
    }

    #[test]
    fn arena_clone_and_clone_from_copy_contents() {
        let arena = ChunkedArena::new();
        for i in 0..6_000u32 {
            arena.push(i);
        }
        let copy = arena.clone();
        assert_eq!(copy.len(), 6_000);
        assert_eq!(copy[5_999], 5_999);
        let mut other = ChunkedArena::new();
        other.push(42u32);
        other.clone_from(&arena);
        assert_eq!(other.len(), 6_000);
        assert_eq!(other[123], 123);
    }

    #[test]
    fn concurrent_pushes_reserve_distinct_slots() {
        let arena = ChunkedArena::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let arena = &arena;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        arena.push(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(arena.len(), 20_000);
        let mut seen: Vec<u64> = arena.iter().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20_000, "lost or duplicated slots");
    }

    #[test]
    fn striped_map_basic_and_concurrent_inserts() {
        let map: StripedMap<u64, u64> = StripedMap::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = &map;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = i % 512;
                        let mut stripe = map.lock_stripe(&key);
                        stripe.entry(key).or_insert(t);
                    }
                });
            }
        });
        let mut map = map;
        assert_eq!(map.len_mut(), 512);
        let lens = map.stripe_lens();
        assert_eq!(lens.iter().sum::<usize>(), 512);
        assert!(
            lens.iter().filter(|&&l| l > 0).count() > 4,
            "keys clump in one stripe"
        );
        assert!(map.remove(&0).is_some());
        map.clear();
        assert_eq!(map.len_mut(), 0);
    }
}
