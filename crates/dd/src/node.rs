//! Node and edge types of the decision diagram package.
//!
//! Decision diagrams are stored in per-package arenas. Nodes are referenced
//! by compact integer ids ([`VecNodeId`] / [`MatNodeId`]); an *edge* is a
//! node id paired with an interned complex weight ([`ComplexId`]). The
//! reserved terminal id represents the 1-element vector / 1x1 matrix at the
//! bottom of the diagram.
//!
//! Following the paper, qubit `q0` is the most significant qubit and labels
//! the *top* node of a diagram; the variable index stored in a node is the
//! qubit index, increasing towards the terminal.

use crate::complex_table::ComplexId;

/// Identifier of a vector decision diagram node inside a [`crate::DdPackage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VecNodeId(pub(crate) u32);

/// Identifier of a matrix decision diagram node inside a [`crate::DdPackage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatNodeId(pub(crate) u32);

impl VecNodeId {
    /// The terminal (leaf) node shared by all vector diagrams.
    pub const TERMINAL: VecNodeId = VecNodeId(u32::MAX);

    /// Returns `true` when this id is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == VecNodeId::TERMINAL
    }

    /// Raw arena index (meaningless for the terminal).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MatNodeId {
    /// The terminal (leaf) node shared by all matrix diagrams.
    pub const TERMINAL: MatNodeId = MatNodeId(u32::MAX);

    /// Returns `true` when this id is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == MatNodeId::TERMINAL
    }

    /// Raw arena index (meaningless for the terminal).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge of a vector decision diagram: a target node plus a complex weight.
///
/// The state vector represented by an edge is the weight times the vector
/// represented by the target node. The all-zero sub-vector is canonically
/// represented by [`VecEdge::zero`] (terminal node, weight 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VecEdge {
    /// Target node.
    pub node: VecNodeId,
    /// Interned complex weight on the edge.
    pub weight: ComplexId,
}

impl VecEdge {
    /// The canonical zero edge (terminal node with weight 0).
    #[inline]
    pub fn zero() -> Self {
        VecEdge {
            node: VecNodeId::TERMINAL,
            weight: ComplexId::ZERO,
        }
    }

    /// An edge to the terminal node with weight 1 (the scalar 1).
    #[inline]
    pub fn one() -> Self {
        VecEdge {
            node: VecNodeId::TERMINAL,
            weight: ComplexId::ONE,
        }
    }

    /// A terminal edge carrying an arbitrary weight.
    #[inline]
    pub fn terminal(weight: ComplexId) -> Self {
        VecEdge {
            node: VecNodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` when this edge represents the all-zero vector.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` when this edge points at the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }
}

/// An edge of a matrix decision diagram: a target node plus a complex weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatEdge {
    /// Target node.
    pub node: MatNodeId,
    /// Interned complex weight on the edge.
    pub weight: ComplexId,
}

impl MatEdge {
    /// The canonical zero edge (terminal node with weight 0).
    #[inline]
    pub fn zero() -> Self {
        MatEdge {
            node: MatNodeId::TERMINAL,
            weight: ComplexId::ZERO,
        }
    }

    /// An edge to the terminal node with weight 1 (the scalar 1).
    #[inline]
    pub fn one() -> Self {
        MatEdge {
            node: MatNodeId::TERMINAL,
            weight: ComplexId::ONE,
        }
    }

    /// A terminal edge carrying an arbitrary weight.
    #[inline]
    pub fn terminal(weight: ComplexId) -> Self {
        MatEdge {
            node: MatNodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` when this edge represents the all-zero matrix.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` when this edge points at the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }
}

/// A vector decision diagram node: splits the represented vector on one
/// qubit, with successor edges for the qubit being `|0>` (index 0) and `|1>`
/// (index 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VecNode {
    /// Qubit index this node decides on (`0` = most significant / top).
    pub var: u16,
    /// Successor edges, indexed by the basis value of the decided qubit.
    pub edges: [VecEdge; 2],
}

/// A matrix decision diagram node: splits the represented matrix into four
/// quadrants. Edge order is row-major: `[top-left, top-right, bottom-left,
/// bottom-right]`, i.e. index `2*row + col` for row/col of the decided qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatNode {
    /// Qubit index this node decides on (`0` = most significant / top).
    pub var: u16,
    /// Successor edges in row-major quadrant order.
    pub edges: [MatEdge; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_ids_are_terminal() {
        assert!(VecNodeId::TERMINAL.is_terminal());
        assert!(MatNodeId::TERMINAL.is_terminal());
        assert!(!VecNodeId(0).is_terminal());
        assert!(!MatNodeId(0).is_terminal());
    }

    #[test]
    fn zero_and_one_edges() {
        assert!(VecEdge::zero().is_zero());
        assert!(VecEdge::zero().is_terminal());
        assert!(!VecEdge::one().is_zero());
        assert!(MatEdge::zero().is_zero());
        assert!(!MatEdge::one().is_zero());
    }

    #[test]
    fn edges_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VecEdge::zero());
        set.insert(VecEdge::one());
        set.insert(VecEdge::zero());
        assert_eq!(set.len(), 2);
    }
}
