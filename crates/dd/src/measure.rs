//! Measurement, sampling and collapse operations on vector decision
//! diagrams.
//!
//! Sampling a complete computational-basis measurement only requires a walk
//! from the root to the terminal: at each node the branch is chosen with
//! probability proportional to the squared norm of the corresponding
//! sub-diagram (which is cached per node). This is what makes drawing
//! measurement outcomes from a decision diagram cheap even for many qubits.

use rand::Rng;

use crate::node::VecEdge;
use crate::package::DdPackage;

/// Slot marker for an absent (terminal or zero-edge) successor.
const TERMINAL_SLOT: u32 = u32::MAX;

/// One flattened node of a [`SamplePlan`]: the branch probabilities and
/// successor slots [`DdPackage::sample_measurement`] would evaluate at this
/// node, with deterministic single-branch chains below each successor
/// collapsed into precomputed bits.
#[derive(Clone, Copy, Debug, Default)]
struct PlanNode {
    probabilities: [f64; 2],
    /// Landing slot per branch: the next node with a genuine branch
    /// decision (deterministic chains are skipped over).
    next: [u32; 2],
    /// Outcome bits contributed by taking a branch: the branch bit itself
    /// followed by its deterministic chain's bits.
    bits: [u64; 2],
    /// Levels consumed per branch (`1 +` chain length). The chain's levels
    /// still burn one generator draw each — their comparisons are
    /// predetermined, their stream consumption is not.
    levels: [u8; 2],
}

/// A precomputed walk table for drawing measurement outcomes from one
/// decision-diagram state (see [`DdPackage::sample_plan`]).
///
/// The plan borrows nothing: it stays valid for repeated draws as long as
/// the state it was built from is the intended one (it snapshots the
/// probabilities, so later package mutations do not affect it).
#[derive(Clone, Debug)]
pub struct SamplePlan {
    nodes: Vec<PlanNode>,
    root: u32,
    num_qubits: usize,
}

impl SamplePlan {
    /// Number of qubits an outcome covers.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Draws one complete measurement outcome.
    ///
    /// Bit-identical to [`DdPackage::sample_measurement`] on the plan's
    /// state for every generator state: the same branch probabilities feed
    /// the same comparisons, and the generator is advanced identically —
    /// one draw per decided level (including the deterministic chain levels
    /// the walk collapses, whose draws are burned without a comparison
    /// because their outcome is predetermined), none past a terminal and
    /// none for zero-probability levels.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut index: u64 = 0;
        let mut level = 0;
        let mut slot = self.root;
        while level < self.num_qubits {
            if slot == TERMINAL_SLOT {
                // Remaining qubits are unreachable; keep their bits zero,
                // exactly like the package walk. A full-width pad (64
                // remaining levels) only occurs with `index == 0`, which a
                // plain shift cannot express.
                let remaining = self.num_qubits - level;
                index = if remaining >= 64 {
                    0
                } else {
                    index << remaining
                };
                break;
            }
            let node = &self.nodes[slot as usize];
            let [p0, p1] = node.probabilities;
            let total = p0 + p1;
            let bit = if total <= 0.0 {
                0
            } else {
                usize::from(rng.gen::<f64>() * total >= p0)
            };
            let taken = node.levels[bit] as usize;
            for _ in 1..taken {
                // Deterministic chain level: the package walk draws and
                // compares against a foregone conclusion; only the draw is
                // observable.
                let _ = rng.gen::<f64>();
            }
            // A 64-level step (the root deciding a full-width register in
            // one chain) replaces the whole index; a plain shift by 64
            // would overflow.
            index = if taken >= 64 {
                node.bits[bit]
            } else {
                (index << taken) | node.bits[bit]
            };
            level += taken;
            slot = node.next[bit];
        }
        index
    }
}

impl DdPackage {
    /// Probability of observing `|1>` on `qubit` when measuring the state
    /// `v` over `n` qubits.
    ///
    /// The state does not need to be normalised; the probability is relative
    /// to the state's norm.
    pub fn probability_one(&mut self, v: VecEdge, qubit: usize) -> f64 {
        let total = self.norm_sqr(v);
        if total <= 0.0 {
            return 0.0;
        }
        let p1 = self.prob_one_rec(v, qubit as u16);
        (p1 / total).clamp(0.0, 1.0)
    }

    fn prob_one_rec(&mut self, edge: VecEdge, target: u16) -> f64 {
        if edge.is_zero() {
            return 0.0;
        }
        let wsq = self.ctable.norm_sqr(edge.weight);
        if edge.node.is_terminal() {
            // The target qubit does not exist below the terminal.
            return 0.0;
        }
        let node = self.vec_nodes[edge.node.index()];
        if node.var == target {
            let e1 = node.edges[1];
            if e1.is_zero() {
                return 0.0;
            }
            let sub = self.ctable.norm_sqr(e1.weight) * self.node_norm(e1.node);
            return wsq * sub;
        }
        if let Some(&cached) = self.ct_prob_one.get(&(edge.node, target)) {
            return wsq * cached;
        }
        let p = self.prob_one_rec(node.edges[0], target) + self.prob_one_rec(node.edges[1], target);
        // Cache the probability of the node with unit incoming weight.
        if self.caching_enabled {
            self.ct_prob_one.insert((edge.node, target), p);
        }
        wsq * p
    }

    /// Draws one complete computational-basis measurement outcome from the
    /// state without collapsing it.
    ///
    /// The result is the basis-state index with qubit 0 as the most
    /// significant bit, matching [`DdPackage::basis_state_from_index`].
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector.
    pub fn sample_measurement<R: Rng + ?Sized>(
        &mut self,
        v: VecEdge,
        n: usize,
        rng: &mut R,
    ) -> u64 {
        assert!(!v.is_zero(), "cannot sample from the zero vector");
        assert!(n <= 64, "sampling supports at most 64 qubits");
        let mut index: u64 = 0;
        let mut edge = v;
        for level in 0..n {
            if edge.node.is_terminal() {
                // Remaining qubits are unreachable (zero amplitude elsewhere);
                // this only happens for malformed states, keep bits at zero.
                index <<= (n - level) as u32;
                break;
            }
            let node = self.vec_nodes[edge.node.index()];
            debug_assert_eq!(node.var as usize, level);
            let p0 = if node.edges[0].is_zero() {
                0.0
            } else {
                self.ctable.norm_sqr(node.edges[0].weight) * self.node_norm(node.edges[0].node)
            };
            let p1 = if node.edges[1].is_zero() {
                0.0
            } else {
                self.ctable.norm_sqr(node.edges[1].weight) * self.node_norm(node.edges[1].node)
            };
            let total = p0 + p1;
            let bit = if total <= 0.0 {
                0
            } else {
                usize::from(rng.gen::<f64>() * total >= p0)
            };
            index = (index << 1) | bit as u64;
            edge = node.edges[bit];
        }
        index
    }

    /// Precomputes a [`SamplePlan`] for repeatedly drawing measurement
    /// outcomes from the state `v` over `n` qubits.
    ///
    /// The plan flattens every reachable node's branch probabilities — the
    /// exact values [`DdPackage::sample_measurement`] computes — into an
    /// array, so each subsequent draw costs `n` array steps instead of
    /// `O(n)` hash lookups and norm recursions. [`SamplePlan::sample`] is
    /// bit-identical to `sample_measurement` for every generator state:
    /// same probabilities, same comparisons, same stream consumption. Use
    /// it when many outcomes are drawn from one state (trajectory
    /// deduplication fans a whole shot group out of a single final state).
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector or `n > 64`.
    pub fn sample_plan(&mut self, v: VecEdge, n: usize) -> SamplePlan {
        assert!(!v.is_zero(), "cannot sample from the zero vector");
        assert!(n <= 64, "sampling supports at most 64 qubits");
        let mut plan = SamplePlan {
            nodes: Vec::new(),
            root: TERMINAL_SLOT,
            num_qubits: n,
        };
        if v.node.is_terminal() {
            return plan;
        }
        // Depth-first flattening; slots are assigned on first visit.
        let mut slots: crate::fxhash::FxHashMap<crate::node::VecNodeId, u32> =
            crate::fxhash::FxHashMap::default();
        let mut stack = vec![v.node];
        plan.root = 0;
        slots.insert(v.node, 0);
        plan.nodes.push(PlanNode::default());
        while let Some(id) = stack.pop() {
            let node = self.vec_nodes[id.index()];
            let slot = slots[&id] as usize;
            let mut entry = PlanNode {
                probabilities: [0.0; 2],
                next: [TERMINAL_SLOT; 2],
                bits: [0, 1],
                levels: [1, 1],
            };
            for bit in 0..2 {
                let edge = node.edges[bit];
                if edge.is_zero() {
                    continue;
                }
                // The same product `sample_measurement` evaluates per
                // branch, so the comparisons below reproduce its draws bit
                // for bit.
                entry.probabilities[bit] =
                    self.ctable.norm_sqr(edge.weight) * self.node_norm(edge.node);
                if !edge.node.is_terminal() {
                    entry.next[bit] = *slots.entry(edge.node).or_insert_with(|| {
                        plan.nodes.push(PlanNode::default());
                        stack.push(edge.node);
                        (plan.nodes.len() - 1) as u32
                    });
                }
            }
            plan.nodes[slot] = entry;
        }

        // Collapse deterministic chains: below a taken branch, every node
        // whose comparison is a foregone conclusion (exactly one branch
        // with positive probability) contributes a fixed bit, so the walk
        // can precompute the bits and only burn the draws. The chain walk
        // uses the raw successor graph; results are written back per
        // branch.
        let raw = plan.nodes.clone();
        for entry in &mut plan.nodes {
            for bit in 0..2 {
                if entry.probabilities[bit] <= 0.0 {
                    // Only reachable through the zero-total fallback, which
                    // draws nothing: keep the uncompressed single step.
                    continue;
                }
                let mut bits = bit as u64;
                let mut levels = 1u8;
                let mut cursor = entry.next[bit];
                while cursor != TERMINAL_SLOT {
                    let [p0, p1] = raw[cursor as usize].probabilities;
                    let chained = if p0 <= 0.0 && p1 > 0.0 {
                        1
                    } else if p1 <= 0.0 && p0 > 0.0 {
                        0
                    } else {
                        // A genuine branch decision (or a zero-total pad,
                        // which consumes no draw): the chain ends here.
                        break;
                    };
                    bits = (bits << 1) | chained as u64;
                    levels += 1;
                    cursor = raw[cursor as usize].next[chained];
                }
                entry.bits[bit] = bits;
                entry.levels[bit] = levels;
                entry.next[bit] = cursor;
            }
        }
        plan
    }

    /// Projects the state onto `qubit = outcome` *without* renormalising.
    ///
    /// The squared norm of the returned state equals the probability of the
    /// outcome. Use [`DdPackage::normalize`] afterwards to obtain the
    /// post-measurement state.
    pub fn project(&mut self, v: VecEdge, qubit: usize, outcome: bool) -> VecEdge {
        self.project_rec(v, qubit as u16, outcome)
    }

    fn project_rec(&mut self, edge: VecEdge, target: u16, outcome: bool) -> VecEdge {
        if edge.is_zero() {
            return edge;
        }
        if edge.node.is_terminal() {
            return edge;
        }
        if let Some(&cached) = self.ct_collapse.get(&(edge.node, target, outcome)) {
            return VecEdge {
                node: cached.node,
                weight: self.ctable.mul(edge.weight, cached.weight),
            };
        }
        let node = self.vec_nodes[edge.node.index()];
        let result = if node.var == target {
            let mut children = [VecEdge::zero(); 2];
            children[usize::from(outcome)] = node.edges[usize::from(outcome)];
            self.make_vec_node(node.var, children)
        } else {
            let c0 = self.project_rec(node.edges[0], target, outcome);
            let c1 = self.project_rec(node.edges[1], target, outcome);
            self.make_vec_node(node.var, [c0, c1])
        };
        if self.caching_enabled {
            self.ct_collapse
                .insert((edge.node, target, outcome), result);
        }
        VecEdge {
            node: result.node,
            weight: self.ctable.mul(edge.weight, result.weight),
        }
    }

    /// Measures a single qubit, collapses the state accordingly, and returns
    /// the observed outcome together with the renormalised post-measurement
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector.
    pub fn measure_qubit<R: Rng + ?Sized>(
        &mut self,
        v: VecEdge,
        qubit: usize,
        rng: &mut R,
    ) -> (bool, VecEdge) {
        assert!(!v.is_zero(), "cannot measure the zero vector");
        let p1 = self.probability_one(v, qubit);
        let outcome = rng.gen::<f64>() < p1;
        let projected = self.project(v, qubit, outcome);
        let collapsed = self.normalize(projected);
        (outcome, collapsed)
    }

    /// Applies a (possibly non-unitary) operator `m`, renormalises the
    /// result, and returns the acceptance probability (the squared norm
    /// before renormalisation) together with the new state.
    ///
    /// This is the primitive used for amplitude-damping Kraus branches
    /// (Example 6 of the paper): apply `A0` or `A1`, read off the branch
    /// probability, and keep the renormalised survivor.
    pub fn apply_kraus(&mut self, m: crate::node::MatEdge, v: VecEdge) -> (f64, VecEdge) {
        let unnormalised = self.mat_vec_mul(m, v);
        let p = self.norm_sqr(unnormalised);
        if p <= 0.0 {
            return (0.0, VecEdge::zero());
        }
        let normalised = self.normalize(unnormalised);
        (p, normalised)
    }

    /// Allocation-free twin of [`vec_node_count`](Self::vec_node_count) for
    /// hot loops: marks visited nodes with a generation stamp in a reusable
    /// scratch buffer instead of a fresh hash set.
    ///
    /// The shot executor calls this after every applied operation to track
    /// the per-shot peak diagram size, so it must not dominate the cost of
    /// the operation itself.
    pub fn vec_node_count_fast(&mut self, v: VecEdge) -> usize {
        if v.is_zero() || v.node.is_terminal() {
            return 0;
        }
        if self.visit_marks.len() < self.vec_nodes.len() {
            self.visit_marks.resize(self.vec_nodes.len(), 0);
        }
        self.visit_stamp = self.visit_stamp.wrapping_add(1);
        if self.visit_stamp == 0 {
            // Stamp wrapped: invalidate every stale mark once.
            self.visit_marks.fill(0);
            self.visit_stamp = 1;
        }
        let stamp = self.visit_stamp;
        let mut stack = std::mem::take(&mut self.visit_stack);
        stack.clear();
        stack.push(v.node);
        let mut count = 0usize;
        while let Some(node) = stack.pop() {
            if node.is_terminal() {
                continue;
            }
            let mark = &mut self.visit_marks[node.index()];
            if *mark == stamp {
                continue;
            }
            *mark = stamp;
            count += 1;
            for e in self.vec_nodes[node.index()].edges {
                if !e.is_zero() {
                    stack.push(e.node);
                }
            }
        }
        self.visit_stack = stack;
        count
    }

    /// Counts the distinct nodes reachable from `v` (the usual decision
    /// diagram size metric; the terminal is not counted).
    pub fn vec_node_count(&self, v: VecEdge) -> usize {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut stack = vec![v.node];
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            let data = self.vec_nodes[node.index()];
            for e in data.edges {
                if !e.is_zero() {
                    stack.push(e.node);
                }
            }
        }
        seen.len()
    }

    /// Counts the distinct nodes reachable from the matrix diagram `m`.
    pub fn mat_node_count(&self, m: crate::node::MatEdge) -> usize {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut stack = vec![m.node];
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            let data = self.mat_nodes[node.index()];
            for e in data.edges {
                if !e.is_zero() {
                    stack.push(e.node);
                }
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix2::Matrix2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell_state(dd: &mut DdPackage) -> VecEdge {
        let s = dd.zero_state(2);
        let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let s = dd.mat_vec_mul(h, s);
        dd.mat_vec_mul(cx, s)
    }

    #[test]
    fn probability_of_basis_states_is_deterministic() {
        let mut dd = DdPackage::new();
        let s = dd.basis_state_from_index(3, 0b101);
        assert!((dd.probability_one(s, 0) - 1.0).abs() < 1e-12);
        assert!(dd.probability_one(s, 1).abs() < 1e-12);
        assert!((dd.probability_one(s, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_has_half_probability_on_each_qubit() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        assert!((dd.probability_one(bell, 0) - 0.5).abs() < 1e-12);
        assert!((dd.probability_one(bell, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_bell_state_only_yields_correlated_outcomes() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen00 = 0;
        let mut seen11 = 0;
        for _ in 0..2000 {
            match dd.sample_measurement(bell, 2, &mut rng) {
                0 => seen00 += 1,
                3 => seen11 += 1,
                other => panic!("impossible outcome {other} sampled from a Bell state"),
            }
        }
        // Both outcomes occur with roughly equal frequency.
        assert!(seen00 > 800 && seen11 > 800);
    }

    #[test]
    fn measuring_collapses_entangled_partner() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let mut rng = StdRng::seed_from_u64(7);
        let (outcome, collapsed) = dd.measure_qubit(bell, 0, &mut rng);
        // After measuring qubit 0, qubit 1 is deterministic and equal.
        let p1 = dd.probability_one(collapsed, 1);
        if outcome {
            assert!((p1 - 1.0).abs() < 1e-10);
        } else {
            assert!(p1.abs() < 1e-10);
        }
        assert!((dd.norm_sqr(collapsed) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn projection_norm_equals_probability() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let projected = dd.project(bell, 0, true);
        assert!((dd.norm_sqr(projected) - 0.5).abs() < 1e-12);
        let projected = dd.project(bell, 0, false);
        assert!((dd.norm_sqr(projected) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_kraus_branches_follow_example_6() {
        // |psi'> = (|00> + |11>)/sqrt(2); damping qubit 0 with probability p
        // yields branch probabilities p/2 and 1 - p/2 (Example 6).
        let p = 0.3;
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let a0 = dd.single_qubit_op(2, 0, Matrix2::amplitude_damping_a0(p));
        let a1 = dd.single_qubit_op(2, 0, Matrix2::amplitude_damping_a1(p));
        let (p0, s0) = dd.apply_kraus(a0, bell);
        let (p1, s1) = dd.apply_kraus(a1, bell);
        assert!((p0 - p / 2.0).abs() < 1e-12);
        assert!((p1 - (1.0 - p / 2.0)).abs() < 1e-12);
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
        // Branch 0 collapses to |01>.
        let v0 = dd.to_statevector(s0, 2);
        assert!((v0[1].abs() - 1.0).abs() < 1e-12);
        // Branch 1 keeps both components with reweighted amplitudes.
        let v1 = dd.to_statevector(s1, 2);
        assert!((v1[0].norm_sqr() - 1.0 / (2.0 - p)).abs() < 1e-12);
        assert!((v1[3].norm_sqr() - (1.0 - p) / (2.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn fast_node_count_matches_the_hash_set_walk() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        assert_eq!(dd.vec_node_count_fast(bell), dd.vec_node_count(bell));
        let zero = dd.zero_state(5);
        assert_eq!(dd.vec_node_count_fast(zero), dd.vec_node_count(zero));
        // Repeated calls (new stamp generations) stay correct.
        assert_eq!(dd.vec_node_count_fast(bell), dd.vec_node_count(bell));
        assert_eq!(dd.vec_node_count_fast(crate::node::VecEdge::zero()), 0);
        // Counting still works after a transient rollback.
        dd.mark_persistent();
        let s = dd.basis_state_from_index(4, 9);
        let n = dd.vec_node_count_fast(s);
        assert_eq!(n, dd.vec_node_count(s));
        dd.reset_transient();
        let t = dd.zero_state(4);
        assert_eq!(dd.vec_node_count_fast(t), 4);
    }

    #[test]
    fn sample_plan_reproduces_sample_measurement_bit_for_bit() {
        let mut dd = DdPackage::new();
        // A structured state (Bell pair padded with an excited qubit) plus
        // a plain basis state: both must sample identically via the plan.
        let bell = bell_state(&mut dd);
        let x1 = dd.single_qubit_op(2, 1, Matrix2::pauli_x());
        let skewed = dd.mat_vec_mul(x1, bell);
        for state in [bell, skewed] {
            let plan = dd.sample_plan(state, 2);
            assert_eq!(plan.num_qubits(), 2);
            for seed in 0..200u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                assert_eq!(
                    plan.sample(&mut rng_a),
                    dd.sample_measurement(state, 2, &mut rng_b),
                    "plan diverged for seed {seed}"
                );
                // Both paths must consume the identical amount of
                // randomness: the next draws agree.
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
            }
        }
    }

    #[test]
    fn sample_plan_handles_full_width_registers() {
        // 64 qubits: a deterministic chain can cover the whole register in
        // one step, which must not overflow the index shift.
        let mut dd = DdPackage::new();
        let wide = dd.basis_state_from_index(64, 1);
        let plan = dd.sample_plan(wide, 64);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(
                plan.sample(&mut rng_a),
                dd.sample_measurement(wide, 64, &mut rng_b)
            );
        }
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn sample_plan_handles_basis_states_without_draws() {
        let mut dd = DdPackage::new();
        let s = dd.basis_state_from_index(4, 0b1010);
        let plan = dd.sample_plan(s, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.gen::<u64>();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(plan.sample(&mut rng), 0b1010);
        // Deterministic branches (p = 0 or 1 on one side still draw; only
        // zero-total levels skip). Cross-check stream position against the
        // package walk.
        let mut rng_ref = StdRng::seed_from_u64(1);
        let _ = dd.sample_measurement(s, 4, &mut rng_ref);
        assert_eq!(rng.gen::<u64>(), rng_ref.gen::<u64>());
        let _ = before;
    }

    #[test]
    fn ghz_node_count_is_linear() {
        let mut dd = DdPackage::new();
        let n = 16;
        let mut state = dd.zero_state(n);
        let h = dd.single_qubit_op(n, 0, Matrix2::hadamard());
        state = dd.mat_vec_mul(h, state);
        for t in 1..n {
            let cx = dd.controlled_op(n, t, &[0], Matrix2::pauli_x());
            state = dd.mat_vec_mul(cx, state);
        }
        let count = dd.vec_node_count(state);
        // GHZ decision diagrams grow linearly with the number of qubits.
        assert!(count <= 2 * n, "GHZ DD has {count} nodes for {n} qubits");
    }
}
