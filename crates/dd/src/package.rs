//! The decision diagram package: arenas, unique tables and operator builders.
//!
//! A [`DdPackage`] owns every node of the diagrams it creates. Nodes are
//! hash-consed through unique tables so that structurally identical
//! sub-diagrams are stored exactly once — this sharing is what makes the
//! representation compact for structured states such as GHZ or QFT outputs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::complex::Complex;
use crate::complex_table::{ComplexId, ComplexTable};
use crate::concurrent::{ChunkedArena, StripedMap};
use crate::fxhash::FxHashMap;
use crate::intra::IntraPool;
use crate::matrix2::Matrix2;
use crate::node::{MatEdge, MatNode, MatNodeId, VecEdge, VecNode, VecNodeId};

/// Default number of entries after which the operation caches are cleared.
pub const DEFAULT_CACHE_LIMIT: usize = 1 << 21;

/// Statistics about the current contents of a [`DdPackage`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Number of distinct vector nodes ever created.
    pub vec_nodes: usize,
    /// Number of distinct matrix nodes ever created.
    pub mat_nodes: usize,
    /// Number of interned complex values.
    pub complex_values: usize,
    /// Current number of matrix-vector multiplication cache entries.
    pub mat_vec_cache: usize,
    /// Current number of vector addition cache entries.
    pub vec_add_cache: usize,
}

/// Lifetime hit/miss counters of a package's unique and compute tables.
///
/// Maintained unconditionally — each counter is one unconditional `u64`
/// increment on a field the table lookup just touched, which is
/// unmeasurable next to the hash probe it annotates. The counters track
/// the *owning package's* whole lifetime: rewinds ([`DdPackage::
/// reset_transient`]) and re-seats (`clone_from`) do not reset them, so a
/// long-lived worker context accumulates its true table effectiveness.
/// Read them with [`DdPackage::table_stats`], difference snapshots for
/// per-job rates, or reset with [`DdPackage::reset_table_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Vector unique-table lookups that found an existing node.
    pub vec_unique_hits: u64,
    /// Vector unique-table lookups that created a new node.
    pub vec_unique_misses: u64,
    /// Matrix unique-table lookups that found an existing node.
    pub mat_unique_hits: u64,
    /// Matrix unique-table lookups that created a new node.
    pub mat_unique_misses: u64,
    /// Compute-table lookups (all operation caches) that hit.
    pub compute_hits: u64,
    /// Compute-table lookups that missed and computed.
    pub compute_misses: u64,
    /// Stripe-lock acquisitions (unique tables, striped compute tables and
    /// the complex table) that found the stripe held by another thread.
    /// Always zero while `intra_threads == 1`.
    pub stripe_contention: u64,
}

impl TableStats {
    /// Counter-wise `self - earlier`, for per-job deltas over a reused
    /// package (saturating: a fresh snapshot against an older package is
    /// never negative).
    pub fn since(&self, earlier: &TableStats) -> TableStats {
        TableStats {
            vec_unique_hits: self.vec_unique_hits.saturating_sub(earlier.vec_unique_hits),
            vec_unique_misses: self
                .vec_unique_misses
                .saturating_sub(earlier.vec_unique_misses),
            mat_unique_hits: self.mat_unique_hits.saturating_sub(earlier.mat_unique_hits),
            mat_unique_misses: self
                .mat_unique_misses
                .saturating_sub(earlier.mat_unique_misses),
            compute_hits: self.compute_hits.saturating_sub(earlier.compute_hits),
            compute_misses: self.compute_misses.saturating_sub(earlier.compute_misses),
            stripe_contention: self
                .stripe_contention
                .saturating_sub(earlier.stripe_contention),
        }
    }
}

/// Interior-mutable backing store for the hit/miss counters of
/// [`TableStats`], so the hot lookup paths can count through `&self` while
/// several fork-join workers traverse one package.
///
/// All increments and loads are `Relaxed`: the counters are diagnostics,
/// and their exact values under intra-shot parallelism depend on thread
/// interleaving (they are deliberately excluded from the determinism
/// contract).
#[derive(Debug, Default)]
pub(crate) struct TableCounters {
    pub(crate) vec_unique_hits: AtomicU64,
    pub(crate) vec_unique_misses: AtomicU64,
    pub(crate) mat_unique_hits: AtomicU64,
    pub(crate) mat_unique_misses: AtomicU64,
    pub(crate) compute_hits: AtomicU64,
    pub(crate) compute_misses: AtomicU64,
}

impl TableCounters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; 6] {
        [
            self.vec_unique_hits.load(Ordering::Relaxed),
            self.vec_unique_misses.load(Ordering::Relaxed),
            self.mat_unique_hits.load(Ordering::Relaxed),
            self.mat_unique_misses.load(Ordering::Relaxed),
            self.compute_hits.load(Ordering::Relaxed),
            self.compute_misses.load(Ordering::Relaxed),
        ]
    }

    fn from_snapshot(values: [u64; 6]) -> Self {
        TableCounters {
            vec_unique_hits: AtomicU64::new(values[0]),
            vec_unique_misses: AtomicU64::new(values[1]),
            mat_unique_hits: AtomicU64::new(values[2]),
            mat_unique_misses: AtomicU64::new(values[3]),
            compute_hits: AtomicU64::new(values[4]),
            compute_misses: AtomicU64::new(values[5]),
        }
    }

    fn store(&mut self, values: [u64; 6]) {
        *self.vec_unique_hits.get_mut() = values[0];
        *self.vec_unique_misses.get_mut() = values[1];
        *self.mat_unique_hits.get_mut() = values[2];
        *self.mat_unique_misses.get_mut() = values[3];
        *self.compute_hits.get_mut() = values[4];
        *self.compute_misses.get_mut() = values[5];
    }
}

/// Table lengths captured at the start of a speculative parallel operation
/// (see [`DdPackage::begin_speculation`]).
#[derive(Debug)]
pub(crate) struct SpecMark {
    ctable_len: usize,
    vec_len: usize,
}

/// A self-contained decision diagram manager.
///
/// All diagrams handed out by a package (as [`VecEdge`] / [`MatEdge`]) are
/// only valid together with that package. Each worker of the stochastic
/// simulator owns one package, which keeps memory bounded and makes
/// concurrent runs trivially data-race free.
///
/// # Persistent and transient regions
///
/// A package can be split into a **persistent region** (precompiled operator
/// diagrams, their interned weights) and a **transient region** (everything
/// created afterwards — per-shot states, scratch values):
/// [`DdPackage::mark_persistent`] freezes the current contents as the
/// persistent region, and [`DdPackage::reset_transient`] cheaply rolls the
/// package back to exactly that frozen state — a watermark truncation that
/// neither frees nor re-hashes the persistent diagrams. This is what lets
/// the simulator compile a circuit's operators once and then run thousands
/// of shots against the same package without rebuilding them.
///
/// # Examples
///
/// ```
/// use qsdd_dd::{DdPackage, Matrix2};
///
/// let mut dd = DdPackage::new();
/// let state = dd.zero_state(2);
/// let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
/// let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
/// let state = dd.mat_vec_mul(h, state);
/// let bell = dd.mat_vec_mul(cx, state);
/// let amps = dd.to_statevector(bell, 2);
/// assert!((amps[0].re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
/// assert!((amps[3].re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct DdPackage {
    pub(crate) ctable: ComplexTable,
    pub(crate) vec_nodes: ChunkedArena<VecNode>,
    pub(crate) mat_nodes: ChunkedArena<MatNode>,
    pub(crate) vec_unique: StripedMap<VecNode, VecNodeId>,
    pub(crate) mat_unique: StripedMap<MatNode, MatNodeId>,
    pub(crate) ct_mat_vec: StripedMap<(MatNodeId, VecNodeId), VecEdge>,
    pub(crate) ct_vec_add: StripedMap<(VecEdge, VecEdge), VecEdge>,
    pub(crate) ct_mat_add: FxHashMap<(MatEdge, MatEdge), MatEdge>,
    pub(crate) ct_mat_mat: FxHashMap<(MatNodeId, MatNodeId), MatEdge>,
    pub(crate) ct_inner: FxHashMap<(VecNodeId, VecNodeId), Complex>,
    pub(crate) ct_prob_one: FxHashMap<(VecNodeId, u16), f64>,
    pub(crate) ct_collapse: FxHashMap<(VecNodeId, u16, bool), VecEdge>,
    pub(crate) norm_cache: FxHashMap<VecNodeId, f64>,
    pub(crate) cache_limit: usize,
    pub(crate) caching_enabled: bool,
    /// Vector nodes below this index belong to the persistent region.
    pub(crate) vec_watermark: usize,
    /// Matrix nodes below this index belong to the persistent region.
    pub(crate) mat_watermark: usize,
    /// Complex values below this index belong to the persistent region
    /// (the canonical 0 and 1 always do).
    pub(crate) complex_watermark: usize,
    /// Scratch for the stamp-based reachable-node counter.
    pub(crate) visit_marks: Vec<u32>,
    pub(crate) visit_stamp: u32,
    pub(crate) visit_stack: Vec<VecNodeId>,
    /// Lifetime table hit/miss counters (diagnostics; see [`TableStats`]).
    pub(crate) counters: TableCounters,
    /// Worker pool for intra-shot fork-join traversal; `None` (and thus
    /// fully serial recursion) unless installed via
    /// [`DdPackage::set_intra_pool`].
    pub(crate) intra: Option<Arc<IntraPool>>,
    /// Remaining operations to run serially after a speculation rollback
    /// (creation-heavy phases would otherwise pay for a doomed parallel
    /// attempt on every operation).
    pub(crate) spec_cooldown: u32,
}

impl Clone for DdPackage {
    fn clone(&self) -> Self {
        DdPackage {
            ctable: self.ctable.clone(),
            vec_nodes: self.vec_nodes.clone(),
            mat_nodes: self.mat_nodes.clone(),
            vec_unique: self.vec_unique.clone(),
            mat_unique: self.mat_unique.clone(),
            ct_mat_vec: self.ct_mat_vec.clone(),
            ct_vec_add: self.ct_vec_add.clone(),
            ct_mat_add: self.ct_mat_add.clone(),
            ct_mat_mat: self.ct_mat_mat.clone(),
            ct_inner: self.ct_inner.clone(),
            ct_prob_one: self.ct_prob_one.clone(),
            ct_collapse: self.ct_collapse.clone(),
            norm_cache: self.norm_cache.clone(),
            cache_limit: self.cache_limit,
            caching_enabled: self.caching_enabled,
            vec_watermark: self.vec_watermark,
            mat_watermark: self.mat_watermark,
            complex_watermark: self.complex_watermark,
            visit_marks: Vec::new(),
            visit_stamp: 0,
            visit_stack: Vec::new(),
            counters: TableCounters::from_snapshot(self.counters.snapshot()),
            // A pool is a property of the execution context, not of the
            // diagram contents; clones start serial until one is installed.
            intra: None,
            spec_cooldown: 0,
        }
    }

    // Hand-rolled so re-seating a worker's package onto another program's
    // template reuses the arena and table allocations already sized by
    // earlier work instead of reallocating from scratch.
    fn clone_from(&mut self, source: &Self) {
        self.ctable.clone_from(&source.ctable);
        self.vec_nodes.clone_from(&source.vec_nodes);
        self.mat_nodes.clone_from(&source.mat_nodes);
        self.vec_unique.clone_from(&source.vec_unique);
        self.mat_unique.clone_from(&source.mat_unique);
        self.ct_mat_vec.clone_from(&source.ct_mat_vec);
        self.ct_vec_add.clone_from(&source.ct_vec_add);
        self.ct_mat_add.clone_from(&source.ct_mat_add);
        self.ct_mat_mat.clone_from(&source.ct_mat_mat);
        self.ct_inner.clone_from(&source.ct_inner);
        self.ct_prob_one.clone_from(&source.ct_prob_one);
        self.ct_collapse.clone_from(&source.ct_collapse);
        self.norm_cache.clone_from(&source.norm_cache);
        self.cache_limit = source.cache_limit;
        self.caching_enabled = source.caching_enabled;
        self.vec_watermark = source.vec_watermark;
        self.mat_watermark = source.mat_watermark;
        self.complex_watermark = source.complex_watermark;
        self.visit_marks.clear();
        self.visit_stamp = 0;
        self.visit_stack.clear();
        // Deliberately NOT copied from `source`: the counters describe the
        // destination package's lifetime of table traffic, and a re-seat
        // onto another program's template must not erase what this package
        // has already counted (the template's counters describe compile
        // time, not this worker). Simulation state is unaffected — the
        // counters are pure diagnostics. The same goes for `intra`: the
        // destination keeps whatever pool its execution context installed.
    }
}

impl DdPackage {
    /// Creates an empty package with default settings.
    pub fn new() -> Self {
        let ctable = ComplexTable::new();
        let complex_watermark = ctable.len();
        DdPackage {
            ctable,
            vec_nodes: ChunkedArena::new(),
            mat_nodes: ChunkedArena::new(),
            vec_unique: StripedMap::new(),
            mat_unique: StripedMap::new(),
            ct_mat_vec: StripedMap::new(),
            ct_vec_add: StripedMap::new(),
            ct_mat_add: FxHashMap::default(),
            ct_mat_mat: FxHashMap::default(),
            ct_inner: FxHashMap::default(),
            ct_prob_one: FxHashMap::default(),
            ct_collapse: FxHashMap::default(),
            norm_cache: FxHashMap::default(),
            cache_limit: DEFAULT_CACHE_LIMIT,
            caching_enabled: true,
            vec_watermark: 0,
            mat_watermark: 0,
            complex_watermark,
            visit_marks: Vec::new(),
            visit_stamp: 0,
            visit_stack: Vec::new(),
            counters: TableCounters::default(),
            intra: None,
            spec_cooldown: 0,
        }
    }

    /// Creates a package with a custom complex-equality tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        let mut p = DdPackage::new();
        p.ctable = ComplexTable::with_tolerance(tolerance);
        p
    }

    /// Enables or disables the operation caches (compute tables).
    ///
    /// Disabling is only useful for ablation experiments; normal users should
    /// leave caching on.
    pub fn set_caching(&mut self, enabled: bool) {
        self.caching_enabled = enabled;
        if !enabled {
            self.clear_caches();
        }
    }

    /// Overrides the per-table memoisation cache limit (entries).
    ///
    /// Each compute table (and the node norm cache) is cleared individually
    /// once it exceeds the limit; see [`DEFAULT_CACHE_LIMIT`].
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn set_cache_limit(&mut self, limit: usize) {
        assert!(limit > 0, "cache limit must be positive");
        self.cache_limit = limit;
    }

    /// Installs (or removes, with `None`) the fork-join pool used for
    /// intra-shot parallel traversal. Without a pool every operation runs
    /// the plain serial recursion; with one, `mat_vec_mul`/`vec_add` fork
    /// their cofactor sub-calls above the pool's level budget. Results are
    /// byte-identical either way: parallel attempts run speculatively and
    /// any attempt that created a table entry is rolled back and re-run
    /// serially, so entry creation — the only order-sensitive event —
    /// always happens in serial order.
    pub fn set_intra_pool(&mut self, pool: Option<Arc<IntraPool>>) {
        self.intra = pool;
    }

    /// The currently installed fork-join pool, if any.
    pub fn intra_pool(&self) -> Option<&Arc<IntraPool>> {
        self.intra.as_ref()
    }

    /// Marks the table state before a speculative parallel operation and
    /// starts journaling compute-cache insertions.
    ///
    /// A parallel attempt that creates **no** new complex-table entry and
    /// **no** new vector node only ever performs lookups that are pure
    /// functions of the pre-operation state, so its result (and every side
    /// effect that survives, i.e. the journaled cache insertions) is
    /// byte-identical to a serial run. If anything *was* created, the
    /// attempt must be rolled back with
    /// [`rollback_speculation`](Self::rollback_speculation) and re-run
    /// serially — creation order under a parallel schedule is not
    /// reproducible, and the complex table's first-comer representatives
    /// depend on it.
    pub(crate) fn begin_speculation(&self) -> SpecMark {
        self.ct_mat_vec.begin_journal();
        self.ct_vec_add.begin_journal();
        SpecMark {
            ctable_len: self.ctable.len(),
            vec_len: self.vec_nodes.len(),
        }
    }

    /// Returns `true` when the attempt since `mark` created nothing and can
    /// be committed as-is.
    pub(crate) fn speculation_clean(&self, mark: &SpecMark) -> bool {
        self.ctable.len() == mark.ctable_len && self.vec_nodes.len() == mark.vec_len
    }

    /// Keeps the side effects of a clean speculative attempt.
    pub(crate) fn commit_speculation(&mut self) {
        self.ct_mat_vec.commit_journal();
        self.ct_vec_add.commit_journal();
    }

    /// Undoes every side effect of a speculative attempt: journaled
    /// compute-cache insertions, vector nodes created since the mark (and
    /// their unique-table entries), and complex-table entries since the
    /// mark. Relaxed diagnostic counters are deliberately not restored.
    pub(crate) fn rollback_speculation(&mut self, mark: SpecMark) {
        self.ct_mat_vec.rollback_journal();
        self.ct_vec_add.rollback_journal();
        for idx in mark.vec_len..self.vec_nodes.len() {
            let node = self.vec_nodes[idx];
            self.vec_unique.remove(&node);
        }
        self.vec_nodes.truncate(mark.vec_len);
        if self.visit_marks.len() > mark.vec_len {
            self.visit_marks.truncate(mark.vec_len);
        }
        self.ctable.truncate(mark.ctable_len);
    }

    /// Returns a read-only view of the complex table.
    pub fn complex_table(&self) -> &ComplexTable {
        &self.ctable
    }

    /// Interns a complex value and returns its id.
    pub fn lookup_complex(&mut self, value: Complex) -> ComplexId {
        self.ctable.lookup(value)
    }

    /// Returns the complex value behind an interned id.
    pub fn complex_value(&self, id: ComplexId) -> Complex {
        self.ctable.value(id)
    }

    /// Returns the node data behind a non-terminal vector node id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is the terminal node or not from this package.
    pub fn vec_node(&self, id: VecNodeId) -> VecNode {
        self.vec_nodes[id.index()]
    }

    /// Returns the node data behind a non-terminal matrix node id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is the terminal node or not from this package.
    pub fn mat_node(&self, id: MatNodeId) -> MatNode {
        self.mat_nodes[id.index()]
    }

    /// Current package statistics.
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            vec_nodes: self.vec_nodes.len(),
            mat_nodes: self.mat_nodes.len(),
            complex_values: self.ctable.len(),
            mat_vec_cache: self.ct_mat_vec.len(),
            vec_add_cache: self.ct_vec_add.len(),
        }
    }

    /// Lifetime unique/compute-table hit and miss counters (see
    /// [`TableStats`]).
    pub fn table_stats(&self) -> TableStats {
        let [vu_h, vu_m, mu_h, mu_m, c_h, c_m] = self.counters.snapshot();
        TableStats {
            vec_unique_hits: vu_h,
            vec_unique_misses: vu_m,
            mat_unique_hits: mu_h,
            mat_unique_misses: mu_m,
            compute_hits: c_h,
            compute_misses: c_m,
            stripe_contention: self.stripe_contention(),
        }
    }

    /// Total stripe-lock acquisitions that had to wait, across all striped
    /// tables of this package.
    pub fn stripe_contention(&self) -> u64 {
        self.vec_unique.contention()
            + self.mat_unique.contention()
            + self.ct_mat_vec.contention()
            + self.ct_vec_add.contention()
            + self.ctable.contention()
    }

    /// Entries per lock stripe for each striped table, as
    /// `(table name, occupancy per stripe)` pairs in a fixed order.
    pub fn stripe_occupancy(&self) -> Vec<(&'static str, Vec<usize>)> {
        vec![
            ("vec_unique", self.vec_unique.stripe_lens().to_vec()),
            ("mat_unique", self.mat_unique.stripe_lens().to_vec()),
            ("mat_vec_cache", self.ct_mat_vec.stripe_lens().to_vec()),
            ("vec_add_cache", self.ct_vec_add.stripe_lens().to_vec()),
            ("complex_table", self.ctable.stripe_lens().to_vec()),
        ]
    }

    /// Resets the table hit/miss counters (and stripe contention) to zero.
    pub fn reset_table_stats(&mut self) {
        self.counters.store([0; 6]);
        self.vec_unique.set_contention(0);
        self.mat_unique.set_contention(0);
        self.ct_mat_vec.set_contention(0);
        self.ct_vec_add.set_contention(0);
        self.ctable.reset_contention();
    }

    /// Clears all operation caches (not the unique tables).
    pub fn clear_caches(&mut self) {
        self.ct_mat_vec.clear();
        self.ct_vec_add.clear();
        self.ct_mat_add.clear();
        self.ct_mat_mat.clear();
        self.ct_inner.clear();
        self.ct_prob_one.clear();
        self.ct_collapse.clear();
        self.norm_cache.clear();
    }

    /// Bounds every memoisation table individually: only a table that grew
    /// beyond the limit is cleared, so a runaway addition cache cannot wipe
    /// a perfectly sized multiplication cache (and vice versa). The node
    /// norm cache is bounded by the same limit.
    pub(crate) fn maybe_trim_caches(&mut self) {
        if self.ct_mat_vec.len_mut() > self.cache_limit {
            self.ct_mat_vec.clear();
        }
        if self.ct_vec_add.len_mut() > self.cache_limit {
            self.ct_vec_add.clear();
        }
        if self.ct_mat_add.len() > self.cache_limit {
            self.ct_mat_add.clear();
        }
        if self.ct_mat_mat.len() > self.cache_limit {
            self.ct_mat_mat.clear();
        }
        if self.ct_inner.len() > self.cache_limit {
            self.ct_inner.clear();
        }
        if self.ct_prob_one.len() > self.cache_limit {
            self.ct_prob_one.clear();
        }
        if self.ct_collapse.len() > self.cache_limit {
            self.ct_collapse.clear();
        }
        if self.norm_cache.len() > self.cache_limit {
            self.norm_cache.clear();
        }
    }

    // ------------------------------------------------------------------
    // Persistent / transient region management
    // ------------------------------------------------------------------

    /// Freezes the current package contents as the **persistent region**.
    ///
    /// Everything created so far — nodes, interned complex values — survives
    /// every subsequent [`reset_transient`](Self::reset_transient) call.
    /// The memoisation caches are cleared so that the frozen state is
    /// exactly reproducible: a fresh clone of the package and a package
    /// rolled back by `reset_transient` are indistinguishable.
    ///
    /// The compile phase of the simulator calls this once, after building
    /// all operator diagrams of a circuit.
    pub fn mark_persistent(&mut self) {
        self.clear_caches();
        self.vec_watermark = self.vec_nodes.len();
        self.mat_watermark = self.mat_nodes.len();
        self.complex_watermark = self.ctable.len();
    }

    /// Rolls the package back to the state frozen by
    /// [`mark_persistent`](Self::mark_persistent).
    ///
    /// All nodes and complex values created after the mark are forgotten
    /// (their ids become dangling — any [`VecEdge`] / [`MatEdge`] obtained
    /// after the mark must not be used again), the memoisation caches are
    /// cleared, and the persistent diagrams stay untouched: no hashing, no
    /// reconstruction, no freeing of their storage. Table and arena
    /// capacities are retained, so a shot loop that resets between shots
    /// stops allocating once it has warmed up.
    ///
    /// On a package without a mark this simply wipes everything back to the
    /// empty state.
    pub fn reset_transient(&mut self) {
        for idx in self.vec_watermark..self.vec_nodes.len() {
            let node = self.vec_nodes[idx];
            self.vec_unique.remove(&node);
        }
        self.vec_nodes.truncate(self.vec_watermark);
        for idx in self.mat_watermark..self.mat_nodes.len() {
            let node = self.mat_nodes[idx];
            self.mat_unique.remove(&node);
        }
        self.mat_nodes.truncate(self.mat_watermark);
        self.ctable.truncate(self.complex_watermark);
        self.visit_marks.truncate(self.vec_watermark);
        self.ct_mat_vec.clear();
        self.ct_vec_add.clear();
        self.ct_mat_add.clear();
        self.ct_mat_mat.clear();
        self.ct_inner.clear();
        self.ct_prob_one.clear();
        self.ct_collapse.clear();
        self.norm_cache.clear();
    }

    /// Number of vector nodes in the transient region (created since the
    /// last [`mark_persistent`](Self::mark_persistent)).
    pub fn transient_vec_nodes(&self) -> usize {
        self.vec_nodes.len() - self.vec_watermark
    }

    /// `true` when no node or complex value has been created since the last
    /// [`mark_persistent`](Self::mark_persistent) — i.e. the package's
    /// diagram contents equal the frozen template exactly (memoisation
    /// caches may still hold entries; they never change computed values).
    pub fn transient_is_empty(&self) -> bool {
        self.vec_nodes.len() == self.vec_watermark
            && self.mat_nodes.len() == self.mat_watermark
            && self.ctable.len() == self.complex_watermark
    }

    // ------------------------------------------------------------------
    // Node construction with normalisation
    // ------------------------------------------------------------------

    /// Creates (or finds) a normalised vector node and returns the edge
    /// pointing to it.
    ///
    /// Normalisation divides both successor weights by the weight of largest
    /// magnitude (ties resolved towards edge 0) and returns that factor as
    /// the weight of the produced edge, which keeps the representation
    /// canonical. An all-zero pair of successors collapses to the zero edge.
    ///
    /// Takes `&self`: node construction is safe from several fork-join
    /// workers at once. The unique-table stripe lock is held across the
    /// lookup-miss-insert sequence, so racing constructions of the same
    /// node always agree on one id.
    pub fn make_vec_node(&self, var: u16, edges: [VecEdge; 2]) -> VecEdge {
        let mut edges = edges;
        for e in &mut edges {
            if e.weight.is_zero() {
                *e = VecEdge::zero();
            }
        }
        if edges[0].is_zero() && edges[1].is_zero() {
            return VecEdge::zero();
        }
        // Pick the normalisation weight: larger magnitude, ties -> edge 0.
        let mag0 = self.ctable.norm_sqr(edges[0].weight);
        let mag1 = self.ctable.norm_sqr(edges[1].weight);
        let norm_idx = if mag0 >= mag1 { 0 } else { 1 };
        let norm_weight = edges[norm_idx].weight;
        debug_assert!(!norm_weight.is_zero());
        let new_edges = [
            VecEdge {
                node: edges[0].node,
                weight: self.ctable.div(edges[0].weight, norm_weight),
            },
            VecEdge {
                node: edges[1].node,
                weight: self.ctable.div(edges[1].weight, norm_weight),
            },
        ];
        let node = VecNode {
            var,
            edges: new_edges,
        };
        let mut stripe = self.vec_unique.lock_stripe(&node);
        let id = match stripe.get(&node) {
            Some(&id) => {
                TableCounters::bump(&self.counters.vec_unique_hits);
                id
            }
            None => {
                TableCounters::bump(&self.counters.vec_unique_misses);
                let id = VecNodeId(self.vec_nodes.push(node) as u32);
                stripe.insert(node, id);
                id
            }
        };
        VecEdge {
            node: id,
            weight: norm_weight,
        }
    }

    /// Creates (or finds) a normalised matrix node and returns the edge
    /// pointing to it.
    ///
    /// The normalisation rule mirrors [`DdPackage::make_vec_node`] over the
    /// four quadrant edges (and shares its `&self` concurrency contract).
    pub fn make_mat_node(&self, var: u16, edges: [MatEdge; 4]) -> MatEdge {
        let mut edges = edges;
        for e in &mut edges {
            if e.weight.is_zero() {
                *e = MatEdge::zero();
            }
        }
        if edges.iter().all(|e| e.is_zero()) {
            return MatEdge::zero();
        }
        let mut norm_idx = 0;
        let mut best = -1.0f64;
        for (i, e) in edges.iter().enumerate() {
            let mag = self.ctable.norm_sqr(e.weight);
            if mag > best {
                best = mag;
                norm_idx = i;
            }
        }
        let norm_weight = edges[norm_idx].weight;
        debug_assert!(!norm_weight.is_zero());
        let mut new_edges = [MatEdge::zero(); 4];
        for i in 0..4 {
            new_edges[i] = MatEdge {
                node: edges[i].node,
                weight: self.ctable.div(edges[i].weight, norm_weight),
            };
        }
        let node = MatNode {
            var,
            edges: new_edges,
        };
        let mut stripe = self.mat_unique.lock_stripe(&node);
        let id = match stripe.get(&node) {
            Some(&id) => {
                TableCounters::bump(&self.counters.mat_unique_hits);
                id
            }
            None => {
                TableCounters::bump(&self.counters.mat_unique_misses);
                let id = MatNodeId(self.mat_nodes.push(node) as u32);
                stripe.insert(node, id);
                id
            }
        };
        MatEdge {
            node: id,
            weight: norm_weight,
        }
    }

    // ------------------------------------------------------------------
    // State constructors
    // ------------------------------------------------------------------

    /// The `n`-qubit all-zero computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than `u16::MAX`.
    pub fn zero_state(&mut self, n: usize) -> VecEdge {
        self.basis_state_from_fn(n, |_| false)
    }

    /// The computational basis state selected by `bits`, where `bits[q]` is
    /// the value of qubit `q` (qubit 0 is the most significant).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n` or `n == 0`.
    pub fn basis_state(&mut self, n: usize, bits: &[bool]) -> VecEdge {
        assert_eq!(bits.len(), n, "bits length must equal qubit count");
        self.basis_state_from_fn(n, |q| bits[q])
    }

    /// The computational basis state with index `index` (qubit 0 = most
    /// significant bit of the index, as in the paper's state-vector layout).
    pub fn basis_state_from_index(&mut self, n: usize, index: u64) -> VecEdge {
        assert!((1..=64).contains(&n), "qubit count must be within 1..=64");
        self.basis_state_from_fn(n, |q| (index >> (n - 1 - q)) & 1 == 1)
    }

    fn basis_state_from_fn(&mut self, n: usize, bit: impl Fn(usize) -> bool) -> VecEdge {
        assert!(n >= 1, "state must contain at least one qubit");
        assert!(n <= u16::MAX as usize, "qubit count exceeds u16 range");
        let mut edge = VecEdge::one();
        for var in (0..n).rev() {
            let mut children = [VecEdge::zero(); 2];
            children[usize::from(bit(var))] = edge;
            edge = self.make_vec_node(var as u16, children);
        }
        edge
    }

    // ------------------------------------------------------------------
    // Operator constructors
    // ------------------------------------------------------------------

    /// The identity operator on `n` qubits.
    pub fn identity_op(&mut self, n: usize) -> MatEdge {
        self.kron_operator(n, &[])
    }

    /// A single-qubit operator `m` acting on `target`, identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `target >= n`.
    pub fn single_qubit_op(&mut self, n: usize, target: usize, m: Matrix2) -> MatEdge {
        assert!(target < n, "target qubit out of range");
        self.kron_operator(n, &[(target, m)])
    }

    /// A Kronecker-product operator: `m_q` on each qubit `q` listed in
    /// `assignments`, identity on every other qubit.
    ///
    /// # Panics
    ///
    /// Panics if an assigned qubit index is out of range or repeated.
    pub fn kron_operator(&mut self, n: usize, assignments: &[(usize, Matrix2)]) -> MatEdge {
        assert!(n >= 1, "operator must act on at least one qubit");
        assert!(n <= u16::MAX as usize, "qubit count exceeds u16 range");
        for (i, (q, _)) in assignments.iter().enumerate() {
            assert!(*q < n, "assigned qubit {q} out of range for {n} qubits");
            assert!(
                assignments[i + 1..].iter().all(|(other, _)| other != q),
                "qubit {q} assigned twice"
            );
        }
        let mut edge = MatEdge::one();
        for var in (0..n).rev() {
            let m = assignments
                .iter()
                .find(|(q, _)| *q == var)
                .map(|(_, m)| *m)
                .unwrap_or_else(Matrix2::identity);
            edge = self.stack_mat_level(var as u16, &m, edge);
        }
        edge
    }

    /// A (multi-)controlled single-qubit operator: `m` is applied to `target`
    /// when all `controls` are `|1>`, otherwise the state is unchanged.
    ///
    /// Uses the decomposition `U = I + P1(controls) ⊗ (m - I)(target)`, which
    /// keeps the construction cost linear in the number of qubits.
    ///
    /// # Panics
    ///
    /// Panics if `target` or any control is out of range, or if `target`
    /// appears in `controls`.
    pub fn controlled_op(
        &mut self,
        n: usize,
        target: usize,
        controls: &[usize],
        m: Matrix2,
    ) -> MatEdge {
        assert!(target < n, "target qubit out of range");
        assert!(
            !controls.contains(&target),
            "target qubit cannot also be a control"
        );
        if controls.is_empty() {
            return self.single_qubit_op(n, target, m);
        }
        let mut assignments = Vec::with_capacity(controls.len() + 1);
        assignments.push((target, m.sub(&Matrix2::identity())));
        for &c in controls {
            assert!(c < n, "control qubit out of range");
            assignments.push((c, Matrix2::projector_one()));
        }
        let difference = self.kron_operator(n, &assignments);
        let identity = self.identity_op(n);
        self.mat_add(identity, difference)
    }

    /// A SWAP operator between qubits `a` and `b`.
    ///
    /// Built as the sum of the four transfer terms
    /// `|00><00| + |01><10| + |10><01| + |11><11|`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn swap_op(&mut self, n: usize, a: usize, b: usize) -> MatEdge {
        assert_ne!(a, b, "swap requires two distinct qubits");
        assert!(a < n && b < n, "swap qubit out of range");
        let p0 = Matrix2::projector_zero();
        let p1 = Matrix2::projector_one();
        let raise = Matrix2::from_real(0.0, 1.0, 0.0, 0.0); // |0><1|
        let lower = Matrix2::from_real(0.0, 0.0, 1.0, 0.0); // |1><0|
        let t00 = self.kron_operator(n, &[(a, p0), (b, p0)]);
        let t01 = self.kron_operator(n, &[(a, raise), (b, lower)]);
        let t10 = self.kron_operator(n, &[(a, lower), (b, raise)]);
        let t11 = self.kron_operator(n, &[(a, p1), (b, p1)]);
        let s = self.mat_add(t00, t01);
        let s = self.mat_add(s, t10);
        self.mat_add(s, t11)
    }

    fn stack_mat_level(&mut self, var: u16, m: &Matrix2, below: MatEdge) -> MatEdge {
        let mut edges = [MatEdge::zero(); 4];
        for r in 0..2 {
            for c in 0..2 {
                let entry = m.entry(r, c);
                if entry.is_zero() || below.is_zero() {
                    continue;
                }
                let w = self.ctable.lookup(entry);
                let weight = self.ctable.mul(w, below.weight);
                edges[2 * r + c] = MatEdge {
                    node: below.node,
                    weight,
                };
            }
        }
        self.make_mat_node(var, edges)
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        DdPackage::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_amplitudes() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let v = dd.to_statevector(s, 3);
        assert!((v[0].re - 1.0).abs() < 1e-12);
        assert!(v[1..].iter().all(|a| a.abs() < 1e-12));
    }

    #[test]
    fn basis_state_round_trip() {
        let mut dd = DdPackage::new();
        for idx in 0..8u64 {
            let s = dd.basis_state_from_index(3, idx);
            let v = dd.to_statevector(s, 3);
            for (i, amp) in v.iter().enumerate() {
                let expected = if i as u64 == idx { 1.0 } else { 0.0 };
                assert!((amp.re - expected).abs() < 1e-12, "index {idx} entry {i}");
                assert!(amp.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn basis_state_bits_and_index_agree() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state(3, &[true, false, true]); // |101> -> index 5
        let b = dd.basis_state_from_index(3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn equal_states_share_nodes() {
        let mut dd = DdPackage::new();
        let a = dd.zero_state(4);
        let b = dd.zero_state(4);
        assert_eq!(a, b);
        // Only four nodes for four qubits: maximal sharing.
        assert_eq!(dd.stats().vec_nodes, 4);
    }

    #[test]
    fn make_vec_node_normalises_to_unit_max_weight() {
        let mut dd = DdPackage::new();
        let half = dd.lookup_complex(Complex::real(0.5));
        let quarter = dd.lookup_complex(Complex::real(0.25));
        let e = dd.make_vec_node(0, [VecEdge::terminal(half), VecEdge::terminal(quarter)]);
        // The larger weight (0.5) is pulled out.
        assert!(dd
            .complex_value(e.weight)
            .approx_eq(Complex::real(0.5), 1e-12));
        let node = dd.vec_node(e.node);
        assert!(node.edges[0].weight.is_one());
        assert!(dd
            .complex_value(node.edges[1].weight)
            .approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn make_vec_node_all_zero_collapses() {
        let dd = DdPackage::new();
        let e = dd.make_vec_node(0, [VecEdge::zero(), VecEdge::zero()]);
        assert!(e.is_zero());
    }

    #[test]
    fn identity_operator_preserves_states() {
        let mut dd = DdPackage::new();
        let id = dd.identity_op(3);
        let s = dd.basis_state_from_index(3, 6);
        let t = dd.mat_vec_mul(id, s);
        assert_eq!(s, t);
    }

    #[test]
    fn single_qubit_x_flips_the_right_qubit() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let x1 = dd.single_qubit_op(3, 1, Matrix2::pauli_x());
        let t = dd.mat_vec_mul(x1, s);
        // Flipping qubit 1 (middle) of |000> gives |010> = index 2.
        let v = dd.to_statevector(t, 3);
        assert!((v[2].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_x_only_fires_when_control_set() {
        let mut dd = DdPackage::new();
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let s00 = dd.zero_state(2);
        let t = dd.mat_vec_mul(cx, s00);
        assert_eq!(t, s00, "CX must not act when control is |0>");
        let s10 = dd.basis_state_from_index(2, 2);
        let t = dd.mat_vec_mul(cx, s10);
        let expected = dd.basis_state_from_index(2, 3);
        assert_eq!(t, expected, "CX must flip target when control is |1>");
    }

    #[test]
    fn toffoli_matches_truth_table() {
        let mut dd = DdPackage::new();
        let ccx = dd.controlled_op(3, 2, &[0, 1], Matrix2::pauli_x());
        for idx in 0..8u64 {
            let s = dd.basis_state_from_index(3, idx);
            let t = dd.mat_vec_mul(ccx, s);
            let expected_idx = if idx >> 1 == 3 { idx ^ 1 } else { idx };
            let expected = dd.basis_state_from_index(3, expected_idx);
            assert_eq!(t, expected, "input index {idx}");
        }
    }

    #[test]
    fn swap_operator_exchanges_qubits() {
        let mut dd = DdPackage::new();
        let swap = dd.swap_op(3, 0, 2);
        for idx in 0..8u64 {
            let s = dd.basis_state_from_index(3, idx);
            let t = dd.mat_vec_mul(swap, s);
            let b0 = (idx >> 2) & 1;
            let b2 = idx & 1;
            let swapped = (idx & 0b010) | (b2 << 2) | b0;
            let expected = dd.basis_state_from_index(3, swapped);
            assert_eq!(t, expected, "input index {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "target qubit out of range")]
    fn out_of_range_target_panics() {
        let mut dd = DdPackage::new();
        let _ = dd.single_qubit_op(2, 2, Matrix2::pauli_x());
    }

    #[test]
    #[should_panic(expected = "qubit 1 assigned twice")]
    fn duplicate_assignment_panics() {
        let mut dd = DdPackage::new();
        let _ = dd.kron_operator(3, &[(1, Matrix2::pauli_x()), (1, Matrix2::pauli_z())]);
    }

    /// Runs a small "shot": H on qubit 0, CX 0->1, returns the final edge.
    fn evolve_bell(dd: &mut DdPackage, h: MatEdge, cx: MatEdge) -> VecEdge {
        let s = dd.zero_state(2);
        let s = dd.mat_vec_mul(h, s);
        dd.mat_vec_mul(cx, s)
    }

    #[test]
    fn reset_transient_restores_the_marked_state_exactly() {
        let mut dd = DdPackage::new();
        let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        dd.mark_persistent();
        let marked = dd.stats();
        let marked_complex = dd.complex_table().len();

        // A pristine clone is the reference for what a "fresh" package with
        // the same compiled operators computes.
        let mut fresh = dd.clone();
        let reference = evolve_bell(&mut fresh, h, cx);

        let first = evolve_bell(&mut dd, h, cx);
        assert_eq!(first, reference);
        assert!(dd.transient_vec_nodes() > 0);

        dd.reset_transient();
        assert_eq!(dd.stats().vec_nodes, marked.vec_nodes);
        assert_eq!(dd.stats().mat_nodes, marked.mat_nodes);
        assert_eq!(dd.complex_table().len(), marked_complex);
        assert_eq!(dd.transient_vec_nodes(), 0);
        assert_eq!(dd.stats().mat_vec_cache, 0);

        // Replaying the same shot after the rollback reproduces the exact
        // same edges (ids and weights), i.e. reuse is unobservable.
        let replay = evolve_bell(&mut dd, h, cx);
        assert_eq!(replay, reference);
    }

    #[test]
    fn reset_transient_without_a_mark_wipes_everything() {
        let mut dd = DdPackage::new();
        let _ = dd.zero_state(3);
        let _ = dd.single_qubit_op(3, 1, Matrix2::hadamard());
        dd.reset_transient();
        assert_eq!(dd.stats().vec_nodes, 0);
        assert_eq!(dd.stats().mat_nodes, 0);
        // Only the canonical 0 and 1 survive in the complex table.
        assert_eq!(dd.complex_table().len(), 2);
    }

    #[test]
    fn transient_nodes_identical_to_persistent_ones_are_reunified() {
        let mut dd = DdPackage::new();
        let persistent = dd.zero_state(4);
        dd.mark_persistent();
        // Recreating the same state after the mark must find the persistent
        // nodes, not duplicate them ...
        let again = dd.zero_state(4);
        assert_eq!(again, persistent);
        assert_eq!(dd.transient_vec_nodes(), 0);
        // ... and resetting must keep them valid.
        dd.reset_transient();
        let after_reset = dd.zero_state(4);
        assert_eq!(after_reset, persistent);
    }

    #[test]
    fn trim_clears_only_the_oversized_table() {
        let mut dd = DdPackage::new();
        // Grow the mat-vec cache while the add cache stays small: multiply
        // distinct single-qubit ops onto distinct states. The limit is
        // lowered only afterwards so the loop itself never trims.
        let mut states = Vec::new();
        for idx in 0..6u64 {
            let s = dd.basis_state_from_index(3, idx);
            let op = dd.single_qubit_op(3, (idx % 3) as usize, Matrix2::hadamard());
            states.push(dd.mat_vec_mul(op, s));
        }
        assert!(
            dd.stats().mat_vec_cache > 4,
            "test setup must overflow the mat-vec cache, got {}",
            dd.stats().mat_vec_cache
        );
        dd.set_cache_limit(4);
        let add_entries = dd.stats().vec_add_cache;
        // The next cached operation triggers the trim: the oversized mat-vec
        // table is cleared, the small add table survives.
        let a = states[0];
        let b = states[1];
        let _ = dd.vec_add(a, b);
        assert_eq!(dd.stats().mat_vec_cache, 0);
        assert!(dd.stats().vec_add_cache >= add_entries);
    }

    #[test]
    fn norm_cache_is_bounded_by_the_cache_limit() {
        let mut dd = DdPackage::new();
        dd.set_cache_limit(2);
        // Computing norms of several distinct states fills the norm cache
        // beyond the limit; the next trimmed operation must clear it.
        for idx in 0..4u64 {
            let s = dd.basis_state_from_index(3, idx);
            let _ = dd.norm_sqr(s);
        }
        assert!(dd.norm_cache.len() > 2);
        let s = dd.zero_state(3);
        let id = dd.identity_op(3);
        let _ = dd.mat_vec_mul(id, s);
        assert!(dd.norm_cache.len() <= 2, "norm cache was not trimmed");
    }

    #[test]
    fn table_stats_count_unique_and_compute_traffic() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(4);
        let h = dd.single_qubit_op(4, 0, Matrix2::hadamard());
        let stats = dd.table_stats();
        assert!(stats.vec_unique_misses >= 4, "zero_state builds 4 nodes");
        assert!(stats.mat_unique_misses > 0);
        // Applying the same operator twice: the second pass replays cached
        // results, so compute hits must appear.
        let t = dd.mat_vec_mul(h, s);
        let _ = dd.mat_vec_mul(h, t);
        let _ = dd.mat_vec_mul(h, s);
        let after = dd.table_stats();
        assert!(after.compute_misses > stats.compute_misses);
        assert!(after.compute_hits > 0, "repeated ops must hit the cache");

        // Deltas subtract counter-wise and saturate.
        let delta = after.since(&stats);
        assert_eq!(
            delta.compute_misses,
            after.compute_misses - stats.compute_misses
        );
        assert_eq!(stats.since(&after).compute_misses, 0);

        // Counters describe the package lifetime: a rewind keeps them, a
        // reset clears them, clone copies them, and clone_from preserves
        // the destination's own history.
        dd.mark_persistent();
        dd.reset_transient();
        assert_eq!(dd.table_stats(), after);
        let cloned = dd.clone();
        assert_eq!(cloned.table_stats(), after);
        let mut other = DdPackage::new();
        let probe = other.zero_state(2);
        let _ = probe;
        let own = other.table_stats();
        other.clone_from(&dd);
        assert_eq!(other.table_stats(), own, "re-seat must keep own counters");
        dd.reset_table_stats();
        assert_eq!(dd.table_stats(), TableStats::default());
    }
}
