//! Decision diagram arithmetic: addition, multiplication and inner products.
//!
//! All operations are recursive traversals over the node structure with
//! memoisation in the package's compute tables. Multiplication caches are
//! keyed on node ids only (the incoming edge weights factor out of the
//! bilinear operations); addition caches include the weights because addition
//! does not factor.
//!
//! ## Intra-shot fork-join: speculate, detect creations, roll back
//!
//! `mat_vec_mul` and `vec_add` can traverse in parallel: when the package
//! has an [`IntraPool`](crate::IntraPool) installed, the two cofactor
//! sub-calls at each recursion level fork onto the pool until a level
//! budget (≈ `log2(threads) + 2`) is exhausted, below which the recursion
//! stays serial.
//!
//! Thread safety comes from the striped tables (unique tables hold their
//! stripe lock across the lookup-insert sequence, so racing constructions
//! of one node agree on one id; the complex table serialises entry
//! creation behind a creation lock with a double-check). *Determinism* —
//! results byte-identical to a serial run, for any thread count — needs
//! more, because the complex table's representatives are first-comer-wins:
//! which value anchors a tolerance ball depends on creation order, and a
//! parallel schedule cannot reproduce the serial order.
//!
//! The resolution is speculative execution. Each top-level operation marks
//! the complex-table and node-arena lengths, journals its compute-cache
//! insertions, and runs the parallel traversal. If the attempt **created
//! nothing** (the common case once the tables have saturated), every
//! lookup it performed was a pure function of the pre-operation state:
//! hits return ids determined by table contents alone, racing compute-cache
//! inserts for one key store identical edges (idempotent), and the final
//! cache contents equal the serial run's — so the attempt commits, and the
//! result is provably byte-identical to serial. If anything *was* created,
//! the attempt is rolled back exactly (journaled cache keys removed, node
//! arena and complex table truncated to the mark) and the operation re-runs
//! serially. Entry creation therefore only ever survives from serial
//! execution, which makes the whole run — ids, representatives, amplitudes,
//! node counts — deterministic by induction over operations. Only the
//! relaxed diagnostic counters (hits/misses/contention) are outside the
//! contract. A short cooldown after each rollback keeps creation-heavy
//! phases from paying for doomed parallel attempts on every operation.

use crate::complex::Complex;
use crate::node::{MatEdge, VecEdge};
use crate::package::{DdPackage, TableCounters};

/// Operations to run serially after a speculation rollback before trying
/// to parallelise again.
const SPEC_COOLDOWN: u32 = 8;

impl DdPackage {
    /// Fork levels available for one traversal: the pool's budget, or zero
    /// when no pool is installed (pure serial recursion).
    #[inline]
    fn fork_budget(&self) -> u32 {
        self.intra.as_ref().map_or(0, |pool| pool.fork_budget())
    }

    /// Fork levels to attempt for the next top-level operation, accounting
    /// for the post-rollback cooldown.
    fn take_fork_budget(&mut self) -> u32 {
        let budget = self.fork_budget();
        if budget == 0 {
            return 0;
        }
        if self.spec_cooldown > 0 {
            self.spec_cooldown -= 1;
            return 0;
        }
        budget
    }

    /// Runs `op` as a speculative parallel attempt, committing it when it
    /// created no table entries and rolling back + re-running serially
    /// otherwise (see the module docs for why this preserves bit-for-bit
    /// determinism).
    fn speculate(&mut self, op: impl Fn(&Self, u32) -> VecEdge, budget: u32) -> VecEdge {
        let mark = self.begin_speculation();
        let result = op(self, budget);
        if self.speculation_clean(&mark) {
            self.commit_speculation();
            result
        } else {
            self.rollback_speculation(mark);
            self.spec_cooldown = SPEC_COOLDOWN;
            op(self, 0)
        }
    }

    /// Multiplies a matrix diagram onto a vector diagram (`m * v`).
    ///
    /// Both diagrams must have been built over the same number of qubits by
    /// this package.
    pub fn mat_vec_mul(&mut self, m: MatEdge, v: VecEdge) -> VecEdge {
        self.maybe_trim_caches();
        match self.take_fork_budget() {
            0 => self.mat_vec_rec(m, v, 0),
            budget => self.speculate(|dd, b| dd.mat_vec_rec(m, v, b), budget),
        }
    }

    fn mat_vec_rec(&self, m: MatEdge, v: VecEdge, budget: u32) -> VecEdge {
        if m.is_zero() || v.is_zero() {
            return VecEdge::zero();
        }
        let weight = self.ctable.mul(m.weight, v.weight);
        if m.node.is_terminal() {
            // Scalar operator: simply scales the vector.
            return VecEdge {
                node: v.node,
                weight,
            };
        }
        debug_assert!(
            !v.node.is_terminal(),
            "operator extends below the state vector terminal"
        );
        let key = (m.node, v.node);
        if self.caching_enabled {
            let cached = self.ct_mat_vec.lock_stripe(&key).get(&key).copied();
            if let Some(cached) = cached {
                TableCounters::bump(&self.counters.compute_hits);
                let w = self.ctable.mul(weight, cached.weight);
                return VecEdge {
                    node: cached.node,
                    weight: w,
                };
            }
        }
        let mnode = self.mat_nodes[m.node.index()];
        let vnode = self.vec_nodes[v.node.index()];
        debug_assert_eq!(
            mnode.var, vnode.var,
            "operator and state decide different qubits"
        );
        let cofactor = |r: usize, budget: u32| {
            let p0 = self.mat_vec_rec(mnode.edges[2 * r], vnode.edges[0], budget);
            let p1 = self.mat_vec_rec(mnode.edges[2 * r + 1], vnode.edges[1], budget);
            self.vec_add_rec(p0, p1, budget)
        };
        let children = match &self.intra {
            Some(pool) if budget > 0 => {
                let (c0, c1) = pool.join(|| cofactor(0, budget - 1), || cofactor(1, budget - 1));
                [c0, c1]
            }
            _ => [cofactor(0, 0), cofactor(1, 0)],
        };
        let result = self.make_vec_node(mnode.var, children);
        if self.caching_enabled {
            TableCounters::bump(&self.counters.compute_misses);
            self.ct_mat_vec.insert_logged(key, result);
        }
        VecEdge {
            node: result.node,
            weight: self.ctable.mul(weight, result.weight),
        }
    }

    /// Adds two vector diagrams element-wise.
    pub fn vec_add(&mut self, a: VecEdge, b: VecEdge) -> VecEdge {
        self.maybe_trim_caches();
        match self.take_fork_budget() {
            0 => self.vec_add_rec(a, b, 0),
            budget => self.speculate(|dd, bud| dd.vec_add_rec(a, b, bud), budget),
        }
    }

    pub(crate) fn vec_add_rec(&self, a: VecEdge, b: VecEdge, budget: u32) -> VecEdge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = self.ctable.add(a.weight, b.weight);
            return VecEdge::terminal(w);
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot add vectors of different heights"
        );
        // Addition is commutative: order the operands for better cache
        // reuse. The swap cannot change result bits — IEEE addition of the
        // leaf weights commutes bitwise, and the child recursion below is
        // indexed by successor position, not by operand order.
        let (x, y) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        let key = (x, y);
        if self.caching_enabled {
            let cached = self.ct_vec_add.lock_stripe(&key).get(&key).copied();
            if let Some(cached) = cached {
                TableCounters::bump(&self.counters.compute_hits);
                return cached;
            }
        }
        let xn = self.vec_nodes[x.node.index()];
        let yn = self.vec_nodes[y.node.index()];
        debug_assert_eq!(xn.var, yn.var, "operands decide different qubits");
        let successor = |i: usize, budget: u32| {
            let ex = VecEdge {
                node: xn.edges[i].node,
                weight: self.ctable.mul(x.weight, xn.edges[i].weight),
            };
            let ey = VecEdge {
                node: yn.edges[i].node,
                weight: self.ctable.mul(y.weight, yn.edges[i].weight),
            };
            self.vec_add_rec(ex, ey, budget)
        };
        let children = match &self.intra {
            Some(pool) if budget > 0 => {
                let (c0, c1) = pool.join(|| successor(0, budget - 1), || successor(1, budget - 1));
                [c0, c1]
            }
            _ => [successor(0, 0), successor(1, 0)],
        };
        let result = self.make_vec_node(xn.var, children);
        if self.caching_enabled {
            TableCounters::bump(&self.counters.compute_misses);
            self.ct_vec_add.insert_logged(key, result);
        }
        result
    }

    /// Adds two matrix diagrams element-wise.
    pub fn mat_add(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.maybe_trim_caches();
        self.mat_add_rec(a, b)
    }

    fn mat_add_rec(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = self.ctable.add(a.weight, b.weight);
            return MatEdge::terminal(w);
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot add matrices of different heights"
        );
        let (x, y) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        if self.caching_enabled {
            if let Some(&cached) = self.ct_mat_add.get(&(x, y)) {
                TableCounters::bump(&self.counters.compute_hits);
                return cached;
            }
        }
        let xn = self.mat_nodes[x.node.index()];
        let yn = self.mat_nodes[y.node.index()];
        debug_assert_eq!(xn.var, yn.var, "operands decide different qubits");
        let mut children = [MatEdge::zero(); 4];
        for (i, child) in children.iter_mut().enumerate() {
            let ex = MatEdge {
                node: xn.edges[i].node,
                weight: self.ctable.mul(x.weight, xn.edges[i].weight),
            };
            let ey = MatEdge {
                node: yn.edges[i].node,
                weight: self.ctable.mul(y.weight, yn.edges[i].weight),
            };
            *child = self.mat_add_rec(ex, ey);
        }
        let result = self.make_mat_node(xn.var, children);
        if self.caching_enabled {
            TableCounters::bump(&self.counters.compute_misses);
            self.ct_mat_add.insert((x, y), result);
        }
        result
    }

    /// Multiplies two matrix diagrams (`a * b`).
    pub fn mat_mat_mul(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.maybe_trim_caches();
        self.mat_mat_rec(a, b)
    }

    fn mat_mat_rec(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        if a.is_zero() || b.is_zero() {
            return MatEdge::zero();
        }
        let weight = self.ctable.mul(a.weight, b.weight);
        if a.node.is_terminal() {
            return MatEdge {
                node: b.node,
                weight,
            };
        }
        if b.node.is_terminal() {
            return MatEdge {
                node: a.node,
                weight,
            };
        }
        if self.caching_enabled {
            if let Some(&cached) = self.ct_mat_mat.get(&(a.node, b.node)) {
                TableCounters::bump(&self.counters.compute_hits);
                let w = self.ctable.mul(weight, cached.weight);
                return MatEdge {
                    node: cached.node,
                    weight: w,
                };
            }
        }
        let an = self.mat_nodes[a.node.index()];
        let bn = self.mat_nodes[b.node.index()];
        debug_assert_eq!(an.var, bn.var, "operands decide different qubits");
        let mut children = [MatEdge::zero(); 4];
        for r in 0..2 {
            for c in 0..2 {
                let p0 = self.mat_mat_rec(an.edges[2 * r], bn.edges[c]);
                let p1 = self.mat_mat_rec(an.edges[2 * r + 1], bn.edges[2 + c]);
                children[2 * r + c] = self.mat_add_rec(p0, p1);
            }
        }
        let result = self.make_mat_node(an.var, children);
        if self.caching_enabled {
            TableCounters::bump(&self.counters.compute_misses);
            self.ct_mat_mat.insert((a.node, b.node), result);
        }
        MatEdge {
            node: result.node,
            weight: self.ctable.mul(weight, result.weight),
        }
    }

    /// Computes the inner product `<a|b>` (conjugate-linear in `a`).
    pub fn inner_product(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        self.maybe_trim_caches();
        self.inner_rec(a, b)
    }

    fn inner_rec(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let w = self.ctable.value(a.weight).conj() * self.ctable.value(b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return w;
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot take inner product of vectors of different heights"
        );
        if self.caching_enabled {
            if let Some(&cached) = self.ct_inner.get(&(a.node, b.node)) {
                TableCounters::bump(&self.counters.compute_hits);
                return cached * w;
            }
        }
        let an = self.vec_nodes[a.node.index()];
        let bn = self.vec_nodes[b.node.index()];
        debug_assert_eq!(an.var, bn.var, "operands decide different qubits");
        let mut sum = Complex::ZERO;
        for i in 0..2 {
            sum += self.inner_rec(an.edges[i], bn.edges[i]);
        }
        if self.caching_enabled {
            TableCounters::bump(&self.counters.compute_misses);
            self.ct_inner.insert((a.node, b.node), sum);
        }
        sum * w
    }

    /// Squared Euclidean norm of the vector represented by `v`.
    pub fn norm_sqr(&mut self, v: VecEdge) -> f64 {
        let w = self.ctable.norm_sqr(v.weight);
        w * self.node_norm(v.node)
    }

    /// Fidelity `|<a|b>|^2` between two (normalised) states.
    pub fn fidelity(&mut self, a: VecEdge, b: VecEdge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// Divides the top edge weight so that the state has unit norm.
    ///
    /// Returns the zero edge unchanged.
    pub fn normalize(&mut self, v: VecEdge) -> VecEdge {
        if v.is_zero() {
            return v;
        }
        let norm = self.norm_sqr(v).sqrt();
        let value = self.ctable.value(v.weight).scale(1.0 / norm);
        VecEdge {
            node: v.node,
            weight: self.ctable.lookup(value),
        }
    }

    /// Squared norm of the sub-vector represented by a node with an incoming
    /// weight of one. Cached per node (nodes are immutable).
    pub(crate) fn node_norm(&mut self, node: crate::node::VecNodeId) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&n) = self.norm_cache.get(&node) {
            return n;
        }
        let data = self.vec_nodes[node.index()];
        let mut total = 0.0;
        for e in data.edges {
            if e.is_zero() {
                continue;
            }
            total += self.ctable.norm_sqr(e.weight) * self.node_norm(e.node);
        }
        self.norm_cache.insert(node, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::FRAC_1_SQRT_2;
    use crate::matrix2::Matrix2;

    fn bell_state(dd: &mut DdPackage) -> VecEdge {
        let s = dd.zero_state(2);
        let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let s = dd.mat_vec_mul(h, s);
        dd.mat_vec_mul(cx, s)
    }

    #[test]
    fn bell_state_has_expected_amplitudes() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let v = dd.to_statevector(bell, 2);
        assert!((v[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
        assert!(v[2].abs() < 1e-12);
        assert!((v[3].re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_unitaries() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        assert!((dd.norm_sqr(bell) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn vector_addition_matches_dense_addition() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 0);
        let b = dd.basis_state_from_index(2, 3);
        let sum = dd.vec_add(a, b);
        let v = dd.to_statevector(sum, 2);
        assert!((v[0].re - 1.0).abs() < 1e-12);
        assert!((v[3].re - 1.0).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
    }

    #[test]
    fn adding_opposite_vectors_gives_zero() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 1);
        let minus_one = dd.lookup_complex(Complex::real(-1.0));
        let neg = VecEdge {
            node: a.node,
            weight: minus_one,
        };
        let sum = dd.vec_add(a, neg);
        assert!(sum.is_zero());
    }

    #[test]
    fn matrix_multiplication_composes_gates() {
        let mut dd = DdPackage::new();
        let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
        let hh = dd.mat_mat_mul(h, h);
        let id = dd.identity_op(1);
        assert_eq!(hh, id, "H * H must be the identity diagram");
        let x = dd.single_qubit_op(1, 0, Matrix2::pauli_x());
        let z = dd.single_qubit_op(1, 0, Matrix2::pauli_z());
        let xz = dd.mat_mat_mul(x, z);
        let zx = dd.mat_mat_mul(z, x);
        assert_ne!(xz, zx, "X and Z anticommute, so XZ != ZX");
    }

    #[test]
    fn composed_operator_equals_sequential_application() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let h = dd.single_qubit_op(3, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(3, 2, &[0], Matrix2::pauli_x());
        let combined = dd.mat_mat_mul(cx, h);
        let sequential = {
            let t = dd.mat_vec_mul(h, s);
            dd.mat_vec_mul(cx, t)
        };
        let at_once = dd.mat_vec_mul(combined, s);
        assert_eq!(sequential, at_once);
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(3, 2);
        let b = dd.basis_state_from_index(3, 5);
        assert!(dd.inner_product(a, b).abs() < 1e-12);
        assert!((dd.inner_product(a, a).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_detects_phase() {
        let mut dd = DdPackage::new();
        let plus = {
            let s = dd.zero_state(1);
            let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
            dd.mat_vec_mul(h, s)
        };
        let minus = {
            let s = dd.basis_state_from_index(1, 1);
            let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
            dd.mat_vec_mul(h, s)
        };
        assert!(dd.inner_product(plus, minus).abs() < 1e-12);
        assert!((dd.fidelity(plus, plus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 0);
        let b = dd.basis_state_from_index(2, 3);
        let sum = dd.vec_add(a, b); // norm^2 = 2
        let normalized = dd.normalize(sum);
        assert!((dd.norm_sqr(normalized) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn caching_can_be_disabled_without_changing_results() {
        let mut cached = DdPackage::new();
        let mut uncached = DdPackage::new();
        uncached.set_caching(false);
        let a = bell_state(&mut cached);
        let b = bell_state(&mut uncached);
        let va = cached.to_statevector(a, 2);
        let vb = uncached.to_statevector(b, 2);
        for (x, y) in va.iter().zip(vb.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    /// Runs an interference-heavy 6-qubit circuit and returns the final
    /// statevector plus structural statistics.
    fn run_circuit(pool: Option<std::sync::Arc<crate::IntraPool>>) -> (Vec<Complex>, usize, usize) {
        let n = 6;
        let mut dd = DdPackage::new();
        dd.set_intra_pool(pool);
        let mut state = dd.zero_state(n);
        for q in 0..n {
            let h = dd.single_qubit_op(n, q, Matrix2::hadamard());
            state = dd.mat_vec_mul(h, state);
        }
        for q in 0..n - 1 {
            let cx = dd.controlled_op(n, q + 1, &[q], Matrix2::pauli_x());
            state = dd.mat_vec_mul(cx, state);
        }
        for q in 0..n {
            let p = dd.single_qubit_op(n, q, Matrix2::phase(0.1 + 0.37 * q as f64));
            state = dd.mat_vec_mul(p, state);
        }
        for q in 0..n {
            let h = dd.single_qubit_op(n, q, Matrix2::hadamard());
            state = dd.mat_vec_mul(h, state);
        }
        let stats = dd.stats();
        (
            dd.to_statevector(state, n),
            stats.vec_nodes,
            stats.complex_values,
        )
    }

    #[test]
    fn fork_join_matches_serial_bit_for_bit() {
        // The speculative fork-join must reproduce the serial run exactly:
        // same amplitudes to the bit, same node-arena and complex-table
        // growth (creation only ever survives from serial execution).
        let (serial, serial_nodes, serial_values) = run_circuit(None);
        for threads in [2usize, 4, 8] {
            let pool = std::sync::Arc::new(crate::IntraPool::new(threads));
            let (parallel, nodes, values) = run_circuit(Some(pool));
            assert_eq!(
                nodes, serial_nodes,
                "node growth differs at {threads} threads"
            );
            assert_eq!(
                values, serial_values,
                "value growth differs at {threads} threads"
            );
            for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "amplitude {i} differs at {threads} threads"
                );
            }
        }
    }
}
