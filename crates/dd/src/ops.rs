//! Decision diagram arithmetic: addition, multiplication and inner products.
//!
//! All operations are recursive traversals over the node structure with
//! memoisation in the package's compute tables. Multiplication caches are
//! keyed on node ids only (the incoming edge weights factor out of the
//! bilinear operations); addition caches include the weights because addition
//! does not factor.

use crate::complex::Complex;
use crate::node::{MatEdge, VecEdge};
use crate::package::DdPackage;

impl DdPackage {
    /// Multiplies a matrix diagram onto a vector diagram (`m * v`).
    ///
    /// Both diagrams must have been built over the same number of qubits by
    /// this package.
    pub fn mat_vec_mul(&mut self, m: MatEdge, v: VecEdge) -> VecEdge {
        self.maybe_trim_caches();
        self.mat_vec_rec(m, v)
    }

    fn mat_vec_rec(&mut self, m: MatEdge, v: VecEdge) -> VecEdge {
        if m.is_zero() || v.is_zero() {
            return VecEdge::zero();
        }
        let weight = self.ctable.mul(m.weight, v.weight);
        if m.node.is_terminal() {
            // Scalar operator: simply scales the vector.
            return VecEdge {
                node: v.node,
                weight,
            };
        }
        debug_assert!(
            !v.node.is_terminal(),
            "operator extends below the state vector terminal"
        );
        if self.caching_enabled {
            if let Some(&cached) = self.ct_mat_vec.get(&(m.node, v.node)) {
                self.counters.compute_hits += 1;
                let w = self.ctable.mul(weight, cached.weight);
                return VecEdge {
                    node: cached.node,
                    weight: w,
                };
            }
        }
        let mnode = self.mat_nodes[m.node.index()];
        let vnode = self.vec_nodes[v.node.index()];
        debug_assert_eq!(
            mnode.var, vnode.var,
            "operator and state decide different qubits"
        );
        let mut children = [VecEdge::zero(); 2];
        for (r, child) in children.iter_mut().enumerate() {
            let p0 = self.mat_vec_rec(mnode.edges[2 * r], vnode.edges[0]);
            let p1 = self.mat_vec_rec(mnode.edges[2 * r + 1], vnode.edges[1]);
            *child = self.vec_add_rec(p0, p1);
        }
        let result = self.make_vec_node(mnode.var, children);
        if self.caching_enabled {
            self.counters.compute_misses += 1;
            self.ct_mat_vec.insert((m.node, v.node), result);
        }
        VecEdge {
            node: result.node,
            weight: self.ctable.mul(weight, result.weight),
        }
    }

    /// Adds two vector diagrams element-wise.
    pub fn vec_add(&mut self, a: VecEdge, b: VecEdge) -> VecEdge {
        self.maybe_trim_caches();
        self.vec_add_rec(a, b)
    }

    pub(crate) fn vec_add_rec(&mut self, a: VecEdge, b: VecEdge) -> VecEdge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = self.ctable.add(a.weight, b.weight);
            return VecEdge::terminal(w);
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot add vectors of different heights"
        );
        // Addition is commutative: order the operands for better cache reuse.
        let (x, y) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        if self.caching_enabled {
            if let Some(&cached) = self.ct_vec_add.get(&(x, y)) {
                self.counters.compute_hits += 1;
                return cached;
            }
        }
        let xn = self.vec_nodes[x.node.index()];
        let yn = self.vec_nodes[y.node.index()];
        debug_assert_eq!(xn.var, yn.var, "operands decide different qubits");
        let mut children = [VecEdge::zero(); 2];
        for (i, child) in children.iter_mut().enumerate() {
            let ex = VecEdge {
                node: xn.edges[i].node,
                weight: self.ctable.mul(x.weight, xn.edges[i].weight),
            };
            let ey = VecEdge {
                node: yn.edges[i].node,
                weight: self.ctable.mul(y.weight, yn.edges[i].weight),
            };
            *child = self.vec_add_rec(ex, ey);
        }
        let result = self.make_vec_node(xn.var, children);
        if self.caching_enabled {
            self.counters.compute_misses += 1;
            self.ct_vec_add.insert((x, y), result);
        }
        result
    }

    /// Adds two matrix diagrams element-wise.
    pub fn mat_add(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.maybe_trim_caches();
        self.mat_add_rec(a, b)
    }

    fn mat_add_rec(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = self.ctable.add(a.weight, b.weight);
            return MatEdge::terminal(w);
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot add matrices of different heights"
        );
        let (x, y) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        if self.caching_enabled {
            if let Some(&cached) = self.ct_mat_add.get(&(x, y)) {
                self.counters.compute_hits += 1;
                return cached;
            }
        }
        let xn = self.mat_nodes[x.node.index()];
        let yn = self.mat_nodes[y.node.index()];
        debug_assert_eq!(xn.var, yn.var, "operands decide different qubits");
        let mut children = [MatEdge::zero(); 4];
        for (i, child) in children.iter_mut().enumerate() {
            let ex = MatEdge {
                node: xn.edges[i].node,
                weight: self.ctable.mul(x.weight, xn.edges[i].weight),
            };
            let ey = MatEdge {
                node: yn.edges[i].node,
                weight: self.ctable.mul(y.weight, yn.edges[i].weight),
            };
            *child = self.mat_add_rec(ex, ey);
        }
        let result = self.make_mat_node(xn.var, children);
        if self.caching_enabled {
            self.counters.compute_misses += 1;
            self.ct_mat_add.insert((x, y), result);
        }
        result
    }

    /// Multiplies two matrix diagrams (`a * b`).
    pub fn mat_mat_mul(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        self.maybe_trim_caches();
        self.mat_mat_rec(a, b)
    }

    fn mat_mat_rec(&mut self, a: MatEdge, b: MatEdge) -> MatEdge {
        if a.is_zero() || b.is_zero() {
            return MatEdge::zero();
        }
        let weight = self.ctable.mul(a.weight, b.weight);
        if a.node.is_terminal() {
            return MatEdge {
                node: b.node,
                weight,
            };
        }
        if b.node.is_terminal() {
            return MatEdge {
                node: a.node,
                weight,
            };
        }
        if self.caching_enabled {
            if let Some(&cached) = self.ct_mat_mat.get(&(a.node, b.node)) {
                self.counters.compute_hits += 1;
                let w = self.ctable.mul(weight, cached.weight);
                return MatEdge {
                    node: cached.node,
                    weight: w,
                };
            }
        }
        let an = self.mat_nodes[a.node.index()];
        let bn = self.mat_nodes[b.node.index()];
        debug_assert_eq!(an.var, bn.var, "operands decide different qubits");
        let mut children = [MatEdge::zero(); 4];
        for r in 0..2 {
            for c in 0..2 {
                let p0 = self.mat_mat_rec(an.edges[2 * r], bn.edges[c]);
                let p1 = self.mat_mat_rec(an.edges[2 * r + 1], bn.edges[2 + c]);
                children[2 * r + c] = self.mat_add_rec(p0, p1);
            }
        }
        let result = self.make_mat_node(an.var, children);
        if self.caching_enabled {
            self.counters.compute_misses += 1;
            self.ct_mat_mat.insert((a.node, b.node), result);
        }
        MatEdge {
            node: result.node,
            weight: self.ctable.mul(weight, result.weight),
        }
    }

    /// Computes the inner product `<a|b>` (conjugate-linear in `a`).
    pub fn inner_product(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        self.maybe_trim_caches();
        self.inner_rec(a, b)
    }

    fn inner_rec(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let w = self.ctable.value(a.weight).conj() * self.ctable.value(b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return w;
        }
        debug_assert!(
            !a.node.is_terminal() && !b.node.is_terminal(),
            "cannot take inner product of vectors of different heights"
        );
        if self.caching_enabled {
            if let Some(&cached) = self.ct_inner.get(&(a.node, b.node)) {
                self.counters.compute_hits += 1;
                return cached * w;
            }
        }
        let an = self.vec_nodes[a.node.index()];
        let bn = self.vec_nodes[b.node.index()];
        debug_assert_eq!(an.var, bn.var, "operands decide different qubits");
        let mut sum = Complex::ZERO;
        for i in 0..2 {
            sum += self.inner_rec(an.edges[i], bn.edges[i]);
        }
        if self.caching_enabled {
            self.counters.compute_misses += 1;
            self.ct_inner.insert((a.node, b.node), sum);
        }
        sum * w
    }

    /// Squared Euclidean norm of the vector represented by `v`.
    pub fn norm_sqr(&mut self, v: VecEdge) -> f64 {
        let w = self.ctable.norm_sqr(v.weight);
        w * self.node_norm(v.node)
    }

    /// Fidelity `|<a|b>|^2` between two (normalised) states.
    pub fn fidelity(&mut self, a: VecEdge, b: VecEdge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// Divides the top edge weight so that the state has unit norm.
    ///
    /// Returns the zero edge unchanged.
    pub fn normalize(&mut self, v: VecEdge) -> VecEdge {
        if v.is_zero() {
            return v;
        }
        let norm = self.norm_sqr(v).sqrt();
        let value = self.ctable.value(v.weight).scale(1.0 / norm);
        VecEdge {
            node: v.node,
            weight: self.ctable.lookup(value),
        }
    }

    /// Squared norm of the sub-vector represented by a node with an incoming
    /// weight of one. Cached per node (nodes are immutable).
    pub(crate) fn node_norm(&mut self, node: crate::node::VecNodeId) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&n) = self.norm_cache.get(&node) {
            return n;
        }
        let data = self.vec_nodes[node.index()];
        let mut total = 0.0;
        for e in data.edges {
            if e.is_zero() {
                continue;
            }
            total += self.ctable.norm_sqr(e.weight) * self.node_norm(e.node);
        }
        self.norm_cache.insert(node, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::FRAC_1_SQRT_2;
    use crate::matrix2::Matrix2;

    fn bell_state(dd: &mut DdPackage) -> VecEdge {
        let s = dd.zero_state(2);
        let h = dd.single_qubit_op(2, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(2, 1, &[0], Matrix2::pauli_x());
        let s = dd.mat_vec_mul(h, s);
        dd.mat_vec_mul(cx, s)
    }

    #[test]
    fn bell_state_has_expected_amplitudes() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        let v = dd.to_statevector(bell, 2);
        assert!((v[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
        assert!(v[2].abs() < 1e-12);
        assert!((v[3].re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_unitaries() {
        let mut dd = DdPackage::new();
        let bell = bell_state(&mut dd);
        assert!((dd.norm_sqr(bell) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn vector_addition_matches_dense_addition() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 0);
        let b = dd.basis_state_from_index(2, 3);
        let sum = dd.vec_add(a, b);
        let v = dd.to_statevector(sum, 2);
        assert!((v[0].re - 1.0).abs() < 1e-12);
        assert!((v[3].re - 1.0).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
    }

    #[test]
    fn adding_opposite_vectors_gives_zero() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 1);
        let minus_one = dd.lookup_complex(Complex::real(-1.0));
        let neg = VecEdge {
            node: a.node,
            weight: minus_one,
        };
        let sum = dd.vec_add(a, neg);
        assert!(sum.is_zero());
    }

    #[test]
    fn matrix_multiplication_composes_gates() {
        let mut dd = DdPackage::new();
        let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
        let hh = dd.mat_mat_mul(h, h);
        let id = dd.identity_op(1);
        assert_eq!(hh, id, "H * H must be the identity diagram");
        let x = dd.single_qubit_op(1, 0, Matrix2::pauli_x());
        let z = dd.single_qubit_op(1, 0, Matrix2::pauli_z());
        let xz = dd.mat_mat_mul(x, z);
        let zx = dd.mat_mat_mul(z, x);
        assert_ne!(xz, zx, "X and Z anticommute, so XZ != ZX");
    }

    #[test]
    fn composed_operator_equals_sequential_application() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(3);
        let h = dd.single_qubit_op(3, 0, Matrix2::hadamard());
        let cx = dd.controlled_op(3, 2, &[0], Matrix2::pauli_x());
        let combined = dd.mat_mat_mul(cx, h);
        let sequential = {
            let t = dd.mat_vec_mul(h, s);
            dd.mat_vec_mul(cx, t)
        };
        let at_once = dd.mat_vec_mul(combined, s);
        assert_eq!(sequential, at_once);
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(3, 2);
        let b = dd.basis_state_from_index(3, 5);
        assert!(dd.inner_product(a, b).abs() < 1e-12);
        assert!((dd.inner_product(a, a).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_detects_phase() {
        let mut dd = DdPackage::new();
        let plus = {
            let s = dd.zero_state(1);
            let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
            dd.mat_vec_mul(h, s)
        };
        let minus = {
            let s = dd.basis_state_from_index(1, 1);
            let h = dd.single_qubit_op(1, 0, Matrix2::hadamard());
            dd.mat_vec_mul(h, s)
        };
        assert!(dd.inner_product(plus, minus).abs() < 1e-12);
        assert!((dd.fidelity(plus, plus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut dd = DdPackage::new();
        let a = dd.basis_state_from_index(2, 0);
        let b = dd.basis_state_from_index(2, 3);
        let sum = dd.vec_add(a, b); // norm^2 = 2
        let normalized = dd.normalize(sum);
        assert!((dd.norm_sqr(normalized) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn caching_can_be_disabled_without_changing_results() {
        let mut cached = DdPackage::new();
        let mut uncached = DdPackage::new();
        uncached.set_caching(false);
        let a = bell_state(&mut cached);
        let b = bell_state(&mut uncached);
        let va = cached.to_statevector(a, 2);
        let vb = uncached.to_statevector(b, 2);
        for (x, y) in va.iter().zip(vb.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }
}
