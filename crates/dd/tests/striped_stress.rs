//! Contention stress for the striped shared-state paths of one package.
//!
//! Every entry point exercised here takes `&self` — the complex-value
//! table's `lookup` and the package's `make_vec_node` — so many threads
//! can hammer **one** instance at once. The striping (per-stripe
//! `parking_lot`-style locks over hash-partitioned buckets) plus the
//! complex table's serialised creation path must guarantee, under heavy
//! deliberate contention:
//!
//! * **agreement** — racing threads interning the same value, or
//!   constructing the same node, always receive the same id;
//! * **no duplicates** — the tables never grow two entries for one value
//!   or one node, no matter how the races interleave;
//! * **accounting** — stripe-occupancy snapshots stay consistent with the
//!   table lengths, and the contention counter (a relaxed diagnostic,
//!   deliberately outside the determinism contract) never makes results
//!   observable.
//!
//! Thread counts here intentionally exceed the machine's cores: the point
//! is interleaving under preemption, not speedup.

use std::thread;

use qsdd_dd::{Complex, ComplexId, ComplexTable, DdPackage, VecEdge};

const THREADS: usize = 8;
const ROUNDS: usize = 400;

/// A small palette of values every thread interns over and over, plus
/// near-duplicates within tolerance that must unify onto the same id.
fn palette() -> Vec<Complex> {
    let mut values = Vec::new();
    for i in 0..24 {
        let base = 0.05 + 0.035 * i as f64;
        values.push(Complex::new(base, -base / 3.0));
        // Within the default tolerance of the exact value above: racing
        // threads may intern either spelling first, and both must land on
        // one id either way.
        values.push(Complex::new(base + 1e-13, -base / 3.0 - 1e-13));
    }
    values
}

#[test]
fn concurrent_complex_lookups_agree_and_never_duplicate() {
    let table = ComplexTable::new();
    let values = palette();

    let views: Vec<Vec<ComplexId>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let table = &table;
                let values = &values;
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    for round in 0..ROUNDS {
                        // Start each worker at a different palette offset so
                        // first-interning races land on different stripes
                        // for different workers.
                        for i in 0..values.len() {
                            let value = values[(i + worker * 7 + round) % values.len()];
                            let id = table.lookup(value);
                            // The stored representative must match what was
                            // asked for (within tolerance), every time.
                            assert!(
                                table.value(id).approx_eq(value, table.tolerance()),
                                "id resolves outside tolerance"
                            );
                        }
                        if round == 0 {
                            // Record this worker's view of the palette, in
                            // palette order, for cross-thread comparison.
                            ids = values.iter().map(|&v| table.lookup(v)).collect();
                        }
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Agreement: every thread resolved every palette entry to the same id.
    for view in &views[1..] {
        assert_eq!(view, &views[0], "threads disagree on interned ids");
    }
    // No duplicates: each exact/near-duplicate pair unified, so at most one
    // entry per pair (plus the fixed 0 and 1) survives.
    let distinct = palette().len() / 2;
    assert!(
        table.len() <= 2 + distinct,
        "table grew duplicates: {} entries for {} distinct values",
        table.len(),
        distinct
    );
}

#[test]
fn concurrent_node_construction_agrees_and_never_duplicates() {
    let mut package = DdPackage::new();
    // Weights are interned serially up front; the parallel phase only
    // *constructs nodes* over this fixed weight palette.
    let weights: Vec<ComplexId> = palette()
        .iter()
        .step_by(2)
        .map(|&v| package.lookup_complex(v))
        .collect();
    let package = &package;

    let views: Vec<Vec<VecEdge>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let weights = &weights;
                scope.spawn(move || {
                    let mut view = Vec::new();
                    for round in 0..ROUNDS {
                        let mut edges = Vec::new();
                        for (i, &w) in weights.iter().enumerate() {
                            // Level-0 node over weighted terminals, offset
                            // per worker so creation races spread out.
                            let j = (i + worker * 5 + round) % weights.len();
                            let leaf = package.make_vec_node(
                                0,
                                [VecEdge::terminal(w), VecEdge::terminal(weights[j])],
                            );
                            // Level-1 node over two copies of the leaf: a
                            // second striped lookup-insert on a different
                            // stripe population.
                            edges.push(package.make_vec_node(1, [leaf, leaf]));
                        }
                        if round == 0 {
                            // Deterministic probe set, identical across
                            // workers, recorded for comparison.
                            view = (0..weights.len())
                                .map(|i| {
                                    let leaf = package.make_vec_node(
                                        0,
                                        [
                                            VecEdge::terminal(weights[i]),
                                            VecEdge::terminal(weights[(i + 1) % weights.len()]),
                                        ],
                                    );
                                    package.make_vec_node(1, [leaf, leaf])
                                })
                                .collect();
                        }
                    }
                    view
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Agreement: identical construction requests resolved to identical
    // edges (same node id, same weight id) on every thread.
    for view in &views[1..] {
        assert_eq!(view, &views[0], "threads disagree on constructed nodes");
    }

    // No duplicates: the node population is bounded by the distinct
    // (weight-pair, level) combinations actually requested, not by
    // THREADS * ROUNDS constructions.
    let stats = package.stats();
    let pairs = weights.len() * weights.len();
    assert!(
        stats.vec_nodes <= 2 * pairs + 2,
        "unique table grew duplicates: {} nodes for <= {} distinct requests",
        stats.vec_nodes,
        2 * pairs
    );

    // Accounting: the stripe-occupancy snapshot of the vector unique table
    // sums to the number of live nodes, and the contention counter is
    // readable (its value is timing-dependent by design, so only its
    // existence is asserted).
    let occupancy = package.stripe_occupancy();
    let (table_name, lens) = occupancy
        .iter()
        .find(|(name, _)| *name == "vec_unique")
        .expect("vector unique table must report occupancy");
    assert_eq!(*table_name, "vec_unique");
    let total: usize = lens.iter().sum();
    assert_eq!(
        total, stats.vec_nodes,
        "stripe occupancy disagrees with node count"
    );
    let _ = package.stripe_contention();
}
