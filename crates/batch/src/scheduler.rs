//! The shot-interleaving batch scheduler.
//!
//! All jobs share one worker pool. Work lives in a **global chunk queue**:
//! every entry is a small contiguous range of shot indices of one job, and
//! idle workers steal the next chunk regardless of which job it belongs to,
//! so shots from different jobs interleave and a giant job cannot starve
//! small ones.
//!
//! Each job's circuit is compiled once, into its [`ShotEngine`]'s program;
//! each worker keeps one long-lived [`ExecContext`] (which internally
//! caches per-back-end-kind state) and reuses it across every chunk of
//! every job it steals, so per-shot cost is pure execution — no operator
//! rebuilding, no per-shot allocation churn.
//!
//! Jobs whose engine supports **trajectory deduplication** release their
//! rounds as *pattern-group chunks* instead of plain shot ranges: the
//! releasing worker presamples the round's shots, groups them by error
//! pattern, and enqueues bundles of groups (each distinct trajectory is
//! simulated once per group, fanning its outcome samples across every
//! member shot) plus one chunk of live shots. Deduplication is
//! unobservable in the results — same histograms, error counts and node
//! statistics, for every thread count — and reported per job as
//! `unique_trajectories` / `dedup_hit_rate`.
//!
//! Jobs with `weighted = true` bypass rounds entirely: the whole job is
//! released as one **weighted chunk** and executed in a single piece by
//! the worker that steals it, through the weighted-enumeration driver
//! ([`qsdd_core::run_engine_weighted_in`]). Weighted jobs report
//! `covered_mass` / `enumerated_trajectories` and never early-stop (the
//! job file forbids combining `weighted` with `epsilon`).
//!
//! Each job's shots are released in **rounds** of
//! [`JobSpec::check_interval`] shots. When the last chunk of a round
//! completes, the finishing worker either declares the job done (shot cap
//! reached, or the Wilson early-stop rule fired), or pushes the next round
//! to the *back* of the queue — which is what keeps the interleaving fair:
//! a 10⁶-shot job only ever occupies the queue with one round at a time.
//!
//! # Determinism
//!
//! Results are bit-identical for any thread count because
//!
//! 1. shot `i` of a job derives its generator from `(job seed, i)` alone
//!    (the [`ShotEngine`] contract), so the value of a shot does not depend
//!    on which worker runs it;
//! 2. histograms merge by addition, which is order-independent; and
//! 3. early stopping is only evaluated at round boundaries — fixed shot
//!    counts — over the complete prefix `0..executed`, so the *set* of
//!    executed shots is a deterministic prefix, never a race.
//!
//! Only the wall-clock fields of the report vary between runs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qsdd_core::{Deadline, ExecContext, ShotEngine, TimedOut};
use qsdd_noise::ErrorPattern;
use qsdd_telemetry::trace;
use qsdd_telemetry::{Counter, Gauge, Stage, StageTimings};
use rand::rngs::StdRng;

use crate::jobfile::JobSpec;
use crate::report::{BatchReport, JobReport, JobStatus};

/// Shots per queue entry: small enough that jobs interleave at fine grain,
/// large enough that queue traffic stays negligible next to shot cost.
const CHUNK_SHOTS: u64 = 32;

/// The z-score of the 95 % Wilson confidence interval used for early
/// stopping.
pub const WILSON_Z: f64 = 1.96;

/// Scheduler knobs.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads; `0` uses all available cores.
    pub threads: usize,
    /// Whether jobs may deduplicate shots by presampled error pattern
    /// (on by default; results are identical either way).
    pub dedup: bool,
    /// Fork-join width *inside* each shot (see [`qsdd_core::IntraPool`]).
    /// `1` (the default) keeps shots serial; `0` lets big jobs borrow the
    /// shot-workers that would otherwise idle when the batch has fewer
    /// runnable jobs than workers. Results are bit-identical either way.
    pub intra_threads: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            dedup: true,
            intra_threads: 1,
        }
    }
}

impl BatchOptions {
    /// Options with an explicit thread count (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..BatchOptions::default()
        }
    }

    /// Disables trajectory deduplication (the per-shot fallback path).
    pub fn without_dedup(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Sets the intra-shot fork-join width (`1` = serial, `0` = borrow
    /// idle shot-workers).
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Self {
        self.intra_threads = intra_threads;
        self
    }

    /// Resolves the effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Half-width of the Wilson score interval at [`WILSON_Z`] for `successes`
/// hits in `samples` trials.
///
/// The Wilson interval behaves well for proportions near 0 and 1 (where the
/// naive normal interval collapses), which matters because a converged job
/// is exactly one whose dominant outcome frequency is extreme.
///
/// ```
/// use qsdd_batch::scheduler::wilson_half_width;
///
/// // Quadrupling the sample size roughly halves the interval.
/// let wide = wilson_half_width(64, 128);
/// let tight = wilson_half_width(256, 512);
/// assert!(tight < wide);
/// assert!((wide / tight - 2.0).abs() < 0.1);
/// ```
pub fn wilson_half_width(successes: u64, samples: u64) -> f64 {
    if samples == 0 {
        return f64::INFINITY;
    }
    let n = samples as f64;
    let p = successes as f64 / n;
    let z = WILSON_Z;
    let denom = 1.0 + z * z / n;
    (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt()
}

/// One unit of queued work for a job.
#[derive(Debug)]
enum ChunkWork {
    /// A contiguous range of shot indices, executed per shot (jobs without
    /// deduplication).
    Range { start: u64, end: u64 },
    /// A bundle of trajectory groups: each distinct error pattern is
    /// simulated once, its member shots sample from the shared result.
    Groups(Vec<(ErrorPattern, Vec<(u64, StdRng)>)>),
    /// Shots that could not be presampled and execute live, one by one.
    Live(Vec<u64>),
    /// The entire job, executed in one piece by the weighted-enumeration
    /// driver (enumerate trajectories in probability order, simulate each
    /// once, sample only the residual tail).
    Weighted,
}

/// A queued chunk: some of one job's shots, in executable form.
#[derive(Debug)]
struct Chunk {
    job: usize,
    /// Number of member shots the chunk accounts for.
    shots: u64,
    work: ChunkWork,
}

/// Mutable per-job aggregation state, guarded by one mutex per job so
/// workers on different jobs never contend.
#[derive(Debug, Default)]
struct JobProgress {
    counts: BTreeMap<u64, u64>,
    error_events: u64,
    dd_nodes_sum: u64,
    dd_nodes_peak: u64,
    executed: u64,
    /// Trajectories actually simulated (pattern groups + live shots; equal
    /// to `executed` on the per-shot path).
    unique_trajectories: u64,
    /// Probability mass covered by enumerated trajectories (weighted jobs
    /// only; `0.0` otherwise).
    covered_mass: f64,
    /// Trajectories enumerated in probability order (weighted jobs only).
    enumerated_trajectories: u64,
    /// Chunks of the current round still in flight.
    round_pending: usize,
    early_stopped: bool,
    /// The job's deadline expired; its partial aggregates are discarded and
    /// the report shows `timed_out`, never a truncated histogram.
    timed_out: bool,
    finished: bool,
    wall_time: Duration,
    /// Per-stage wall-time breakdown: compile/transpile seeded from the
    /// engine build, presample recorded at round boundaries, execute
    /// accumulated per chunk (always filled; cost is one `Instant` read per
    /// chunk under a lock already held).
    stage_timings: StageTimings,
}

/// A runnable job: its engine plus the knobs the scheduler needs.
struct JobRuntime {
    engine: ShotEngine,
    shots: u64,
    epsilon: Option<f64>,
    check_interval: u64,
    /// Whether rounds are released as deduplicated pattern groups.
    dedup: bool,
    /// Whether the job runs in one piece through the weighted-enumeration
    /// driver instead of sampled rounds.
    weighted: bool,
    /// The job's cooperative deadline (`timeout_ms`; unbounded without
    /// one). Workers consult it at chunk boundaries, so an expired job's
    /// remaining chunks drain instantly instead of simulating.
    deadline: Deadline,
    progress: Mutex<JobProgress>,
}

/// Everything the worker pool shares.
struct Shared {
    queue: Mutex<VecDeque<Chunk>>,
    wake: Condvar,
    /// Jobs that have not finished yet; workers exit when this hits zero and
    /// the queue is empty.
    active: AtomicUsize,
    started: Instant,
    /// Global-registry handles, resolved once per batch; `None` while
    /// telemetry is disabled so the hot path pays nothing.
    metrics: Option<BatchMetrics>,
}

/// Pre-resolved telemetry handles for the scheduler's shared structures
/// (looking up a metric by name takes the registry lock, so it happens
/// once per batch here, never per chunk).
struct BatchMetrics {
    /// Chunks executed, labelled by work kind
    /// (`range`/`groups`/`live`/`weighted`).
    chunks_range: Arc<Counter>,
    chunks_groups: Arc<Counter>,
    chunks_live: Arc<Counter>,
    chunks_weighted: Arc<Counter>,
    /// Member shots those chunks accounted for.
    shots: Arc<Counter>,
    /// Instantaneous chunk-queue depth (sampled at push/pop under the
    /// queue lock) and its high-water mark.
    queue_depth: Arc<Gauge>,
    queue_depth_peak: Arc<Gauge>,
}

impl BatchMetrics {
    /// Resolves the handles from the global registry when telemetry is on.
    fn resolve() -> Option<BatchMetrics> {
        if !qsdd_telemetry::enabled() {
            return None;
        }
        let registry = qsdd_telemetry::global();
        let chunks = "Chunks executed by the batch worker pool";
        Some(BatchMetrics {
            chunks_range: registry.counter_with(
                "qsdd_batch_chunks_total",
                chunks,
                &[("kind", "range")],
            ),
            chunks_groups: registry.counter_with(
                "qsdd_batch_chunks_total",
                chunks,
                &[("kind", "groups")],
            ),
            chunks_live: registry.counter_with(
                "qsdd_batch_chunks_total",
                chunks,
                &[("kind", "live")],
            ),
            chunks_weighted: registry.counter_with(
                "qsdd_batch_chunks_total",
                chunks,
                &[("kind", "weighted")],
            ),
            shots: registry.counter(
                "qsdd_batch_shots_total",
                "Member shots accounted for by executed batch chunks",
            ),
            queue_depth: registry.gauge(
                "qsdd_batch_queue_depth",
                "Chunks currently waiting in the batch scheduler queue",
            ),
            queue_depth_peak: registry.gauge(
                "qsdd_batch_queue_depth_peak",
                "Deepest the batch chunk queue has been",
            ),
        })
    }

    /// Samples the queue depth (call with the queue lock held).
    fn observe_depth(&self, depth: usize) {
        let depth = depth as i64;
        self.queue_depth.set(depth);
        self.queue_depth_peak.set_max(depth);
    }
}

/// Runs all jobs of a batch on a shared worker pool and aggregates a
/// [`BatchReport`].
///
/// Jobs whose circuit fails to load (missing QASM file, parse error,
/// unknown generator) are reported as [`JobStatus::Failed`] and do not
/// prevent the remaining jobs from running.
pub fn run_batch(specs: &[JobSpec], options: &BatchOptions) -> BatchReport {
    let started = Instant::now();
    // Build one engine per job up front; transpilation happens here, once.
    let mut runtimes: Vec<Option<JobRuntime>> = Vec::with_capacity(specs.len());
    let mut failures: Vec<Option<String>> = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec.load_circuit() {
            Ok(circuit) => {
                let engine =
                    ShotEngine::new(&circuit, spec.backend, spec.noise, spec.seed, spec.opt);
                let progress = JobProgress {
                    // Transpile/compile happened inside the engine build.
                    stage_timings: engine.stage_timings(),
                    ..JobProgress::default()
                };
                runtimes.push(Some(JobRuntime {
                    dedup: options.dedup && engine.supports_dedup(),
                    weighted: spec.weighted,
                    engine,
                    shots: spec.shots,
                    epsilon: spec.epsilon,
                    check_interval: spec.check_interval,
                    deadline: match spec.timeout_ms {
                        Some(ms) => Deadline::from_millis(ms),
                        None => Deadline::unbounded(),
                    },
                    progress: Mutex::new(progress),
                }));
                failures.push(None);
            }
            Err(message) => {
                runtimes.push(None);
                failures.push(Some(message));
            }
        }
    }

    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        active: AtomicUsize::new(0),
        started,
        metrics: BatchMetrics::resolve(),
    };
    // Seed the queue with round 1 of every runnable job, in file order, so
    // every job makes progress from the first instant. No worker is running
    // yet, so building (and presampling) the rounds needs no locking care.
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        for (index, runtime) in runtimes.iter().enumerate() {
            let Some(runtime) = runtime else { continue };
            if runtime.shots == 0 {
                let mut progress = runtime.progress.lock().expect("progress lock");
                progress.finished = true;
                continue;
            }
            shared.active.fetch_add(1, Ordering::SeqCst);
            let round_started = Instant::now();
            let chunks = build_round(runtime, index, 0);
            let mut progress = runtime.progress.lock().expect("progress lock");
            if runtime.dedup && !runtime.weighted {
                progress
                    .stage_timings
                    .record(Stage::Presample, round_started.elapsed());
            }
            progress.round_pending = chunks.len();
            queue.extend(chunks);
        }
        if let Some(metrics) = &shared.metrics {
            metrics.observe_depth(queue.len());
        }
    }

    let workers = options.effective_threads().max(1);
    // Intra-shot fork-join pool, shared by every worker. In auto mode
    // (`intra_threads == 0`) big jobs borrow the shot-workers that would
    // idle when the batch has fewer runnable jobs than workers: the
    // request becomes `workers / runnable` and the oversubscription clamp
    // is taken against the workers that can actually stay busy. Results
    // are bit-identical with or without the pool, so this is purely a
    // throughput knob.
    let runnable = runtimes
        .iter()
        .flatten()
        .filter(|runtime| runtime.shots > 0)
        .count()
        .max(1);
    let requested_intra = if options.intra_threads == 0 {
        (workers / runnable).max(1)
    } else {
        options.intra_threads
    };
    let intra = qsdd_core::build_intra_pool(requested_intra, workers.min(runnable));
    let trace_handle = trace::propagate();
    std::thread::scope(|scope| {
        let shared = &shared;
        let runtimes = &runtimes;
        let intra = &intra;
        for worker in 0..workers {
            let trace_handle = trace_handle.clone();
            scope.spawn(move || {
                let _lane = trace_handle.as_ref().map(|h| h.install(worker as u32 + 1));
                worker_loop(shared, runtimes, worker, intra.clone())
            });
        }
    });

    let jobs = specs
        .iter()
        .zip(runtimes.iter())
        .zip(failures.iter())
        .map(|((spec, runtime), failure)| match runtime {
            Some(runtime) => {
                let progress = runtime.progress.lock().expect("progress lock");
                if progress.timed_out {
                    // Deliberately drop the partial aggregates: a truncated
                    // histogram is indistinguishable from a converged one
                    // downstream, so a timed-out job reports nothing but
                    // the reason.
                    JobReport::failed(
                        &spec.name,
                        &spec.backend.to_string(),
                        spec.shots,
                        format!(
                            "timed_out: exceeded the {} ms deadline",
                            spec.timeout_ms.unwrap_or(0)
                        ),
                    )
                } else {
                    JobReport {
                        name: spec.name.clone(),
                        backend: spec.backend.to_string(),
                        status: JobStatus::Completed,
                        qubits: runtime.engine.num_qubits(),
                        shots_requested: spec.shots,
                        shots_executed: progress.executed,
                        early_stopped: progress.early_stopped,
                        counts: progress.counts.clone(),
                        error_events: progress.error_events,
                        dd_nodes_avg: if progress.executed == 0 {
                            0.0
                        } else {
                            progress.dd_nodes_sum as f64 / progress.executed as f64
                        },
                        dd_nodes_peak: progress.dd_nodes_peak,
                        unique_trajectories: progress.unique_trajectories,
                        dedup_hit_rate: if progress.executed == 0 {
                            0.0
                        } else {
                            1.0 - progress.unique_trajectories as f64 / progress.executed as f64
                        },
                        covered_mass: progress.covered_mass,
                        enumerated_trajectories: progress.enumerated_trajectories,
                        wall_time: progress.wall_time,
                        stage_timings: progress.stage_timings,
                    }
                }
            }
            None => JobReport::failed(
                &spec.name,
                &spec.backend.to_string(),
                spec.shots,
                failure.clone().expect("failed jobs carry a message"),
            ),
        })
        .collect();

    BatchReport {
        jobs,
        threads: workers,
        total_wall_time: started.elapsed(),
    }
}

/// Builds the executable chunks of the round of shots starting at `start`.
///
/// Jobs without deduplication release plain shot ranges. Deduplicating jobs
/// presample the round here — once, by whichever worker closes the previous
/// round — and release bundles of pattern groups (kept whole, so one
/// representative execution serves every member) plus the live remainder.
/// Either way each chunk accounts for `chunk.shots` member shots and the
/// round covers exactly `start..min(start + check_interval, shots)`.
fn build_round(runtime: &JobRuntime, job: usize, start: u64) -> Vec<Chunk> {
    if runtime.weighted {
        // Weighted jobs run whole: one chunk covers every shot, so this is
        // only ever called with `start == 0` and there is no next round.
        debug_assert_eq!(start, 0);
        return vec![Chunk {
            job,
            shots: runtime.shots,
            work: ChunkWork::Weighted,
        }];
    }
    let end = (start + runtime.check_interval).min(runtime.shots);
    let mut chunks = Vec::new();
    if !runtime.dedup {
        let mut cursor = start;
        while cursor < end {
            let chunk_end = (cursor + CHUNK_SHOTS).min(end);
            chunks.push(Chunk {
                job,
                shots: chunk_end - cursor,
                work: ChunkWork::Range {
                    start: cursor,
                    end: chunk_end,
                },
            });
            cursor = chunk_end;
        }
        return chunks;
    }

    // Presample the round and group shots by error pattern (groups keep
    // first-appearance order; members stay in shot order).
    let presample_span = trace::span("presample_round");
    trace::attr("job", job);
    trace::attr("shots", (end - start) as usize);
    let (groups, live) = runtime
        .engine
        .presample_range(start..end)
        .expect("dedup rounds are only built for supporting engines");
    trace::attr("groups", groups.len());
    trace::attr("live_shots", live.len());
    drop(presample_span);
    let mut bundle: Vec<(ErrorPattern, Vec<(u64, StdRng)>)> = Vec::new();
    let mut bundled = 0u64;
    for group in groups {
        bundled += group.1.len() as u64;
        bundle.push(group);
        if bundled >= CHUNK_SHOTS {
            chunks.push(Chunk {
                job,
                shots: bundled,
                work: ChunkWork::Groups(std::mem::take(&mut bundle)),
            });
            bundled = 0;
        }
    }
    if !bundle.is_empty() {
        chunks.push(Chunk {
            job,
            shots: bundled,
            work: ChunkWork::Groups(bundle),
        });
    }
    for slice in live.chunks(CHUNK_SHOTS as usize) {
        chunks.push(Chunk {
            job,
            shots: slice.len() as u64,
            work: ChunkWork::Live(slice.to_vec()),
        });
    }
    chunks
}

fn worker_loop(
    shared: &Shared,
    runtimes: &[Option<JobRuntime>],
    worker: usize,
    intra: Option<Arc<qsdd_core::IntraPool>>,
) {
    // One long-lived execution context (internally caching per-back-end
    // state), reused across chunks *and* jobs: the context re-seats itself
    // when the stolen chunk belongs to a different job's program, and
    // merely rewinds when it belongs to the same one, so each worker
    // compiles nothing and allocates almost nothing in steady state. Reuse
    // is unobservable in the results (the ShotEngine contract), so the
    // interleaving stays bit-deterministic — including with an intra-shot
    // pool installed, by the speculation contract of `qsdd_dd`.
    let mut context = ExecContext::new();
    context.set_intra_pool(intra);
    // Busy time accumulates locally and is flushed once at exit (one
    // labelled counter update per worker per batch, nothing per chunk).
    let worker_label = worker.to_string();
    let busy_counter = shared.metrics.as_ref().map(|_| {
        qsdd_telemetry::global().counter_with(
            "qsdd_batch_worker_busy_usec_total",
            "Microseconds each batch worker spent executing chunks",
            &[("worker", worker_label.as_str())],
        )
    });
    let mut busy = Duration::ZERO;
    loop {
        // Steal the next chunk, or exit once every job has finished.
        let chunk = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(chunk) = queue.pop_front() {
                    if let Some(metrics) = &shared.metrics {
                        metrics.observe_depth(queue.len());
                    }
                    break Some(chunk);
                }
                if shared.active.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                queue = shared.wake.wait(queue).expect("queue lock");
            }
        };
        let Some(chunk) = chunk else {
            if let Some(counter) = &busy_counter {
                counter.add(u64::try_from(busy.as_micros()).unwrap_or(u64::MAX));
            }
            return;
        };
        let runtime = runtimes[chunk.job]
            .as_ref()
            .expect("only runnable jobs are enqueued");
        // Chunk-boundary deadline check: once the job's budget is spent,
        // its remaining chunks drain without simulating, and whichever
        // worker drains the round's last chunk retires the job. Results
        // are discarded wholesale (see `JobProgress::timed_out`), so
        // skipping work cannot skew a histogram.
        let bounded = !runtime.deadline.is_unbounded();
        if bounded && runtime.deadline.expired() {
            let mut progress = runtime.progress.lock().expect("progress lock");
            progress.timed_out = true;
            progress.round_pending -= 1;
            if progress.round_pending == 0 {
                progress.finished = true;
                progress.wall_time = shared.started.elapsed();
                drop(progress);
                let queue = shared.queue.lock().expect("queue lock");
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.wake.notify_all();
                drop(queue);
            }
            continue;
        }
        if let Some(metrics) = &shared.metrics {
            match &chunk.work {
                ChunkWork::Range { .. } => metrics.chunks_range.inc(),
                ChunkWork::Groups(_) => metrics.chunks_groups.inc(),
                ChunkWork::Live(_) => metrics.chunks_live.inc(),
                ChunkWork::Weighted => metrics.chunks_weighted.inc(),
            }
            metrics.shots.add(chunk.shots);
        }
        let chunk_started = Instant::now();
        let chunk_span = trace::span("chunk");
        trace::attr("job", chunk.job);
        trace::attr("shots", chunk.shots);
        trace::attr(
            "kind",
            match &chunk.work {
                ChunkWork::Range { .. } => "range",
                ChunkWork::Groups(_) => "groups",
                ChunkWork::Live(_) => "live",
                ChunkWork::Weighted => "weighted",
            },
        );

        // Execute the chunk without holding any lock, through the worker's
        // long-lived context.
        let mut local_counts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut local_errors = 0u64;
        let mut local_nodes_sum = 0u64;
        let mut local_nodes_peak = 0u64;
        let mut record = |sample: qsdd_core::ShotSample| {
            *local_counts.entry(sample.outcome).or_insert(0) += 1;
            local_errors += sample.error_events;
            local_nodes_sum += sample.dd_nodes;
            local_nodes_peak = local_nodes_peak.max(sample.dd_nodes_peak);
        };
        let mut weighted_outcome: Option<qsdd_core::StochasticOutcome> = None;
        let mut chunk_timed_out = false;
        let local_trajectories = match chunk.work {
            ChunkWork::Range { start, end } => {
                for shot in start..end {
                    record(runtime.engine.run_shot_in(&mut context, shot));
                }
                end - start
            }
            ChunkWork::Weighted => {
                // The whole job in one call: enumerate trajectories in
                // probability order, simulate each once, tail-sample the
                // residual. Falls back to deduplicated sampling when the
                // program does not support enumeration. The deadline rides
                // along because this chunk *is* the job — trajectory-level
                // checks inside the driver are its only cancellation
                // points.
                match qsdd_core::run_engine_weighted_in_deadline(
                    &runtime.engine,
                    &mut context,
                    runtime.shots as usize,
                    &[],
                    &qsdd_core::WeightedOptions::default(),
                    &runtime.deadline,
                ) {
                    Ok(outcome) => {
                        let trajectories = match (&outcome.weighted, &outcome.dedup) {
                            (Some(stats), _) => stats.enumerated_trajectories + stats.tail_shots,
                            (None, Some(stats)) => stats.unique_trajectories,
                            (None, None) => outcome.shots as u64,
                        };
                        weighted_outcome = Some(outcome);
                        trajectories
                    }
                    Err(TimedOut) => {
                        chunk_timed_out = true;
                        0
                    }
                }
            }
            ChunkWork::Groups(groups) => {
                let trajectories = groups.len() as u64;
                for (pattern, mut shots) in groups {
                    for (_, sample, _) in
                        runtime
                            .engine
                            .run_group_in(&mut context, &pattern, &mut shots, &[])
                    {
                        record(sample);
                    }
                }
                trajectories
            }
            ChunkWork::Live(shots) => {
                let trajectories = shots.len() as u64;
                for shot in shots {
                    record(runtime.engine.run_shot_in(&mut context, shot));
                }
                trajectories
            }
        };
        trace::attr("trajectories", local_trajectories);
        drop(chunk_span);
        let chunk_elapsed = chunk_started.elapsed();
        busy += chunk_elapsed;

        // Merge, and if this was the round's last chunk, decide what's next.
        let mut progress = runtime.progress.lock().expect("progress lock");
        if let Some(outcome) = weighted_outcome {
            // The weighted driver produced the complete job result in one
            // piece: adopt its histogram, statistics and stage breakdown
            // wholesale (its timings already include the engine build).
            progress.stage_timings = outcome.stage_timings;
            for (value, count) in outcome.counts {
                *progress.counts.entry(value).or_insert(0) += count;
            }
            progress.error_events += outcome.error_events;
            progress.dd_nodes_sum += (outcome.dd_nodes_avg * outcome.shots as f64).round() as u64;
            progress.dd_nodes_peak = progress.dd_nodes_peak.max(outcome.dd_nodes_peak);
            if let Some(stats) = outcome.weighted {
                progress.covered_mass = stats.covered_mass;
                progress.enumerated_trajectories = stats.enumerated_trajectories;
            }
        } else {
            progress.stage_timings.record(Stage::Execute, chunk_elapsed);
            for (outcome, count) in local_counts {
                *progress.counts.entry(outcome).or_insert(0) += count;
            }
            progress.error_events += local_errors;
            progress.dd_nodes_sum += local_nodes_sum;
            progress.dd_nodes_peak = progress.dd_nodes_peak.max(local_nodes_peak);
        }
        progress.executed += chunk.shots;
        progress.unique_trajectories += local_trajectories;
        progress.round_pending -= 1;
        if chunk_timed_out {
            progress.timed_out = true;
        }
        if progress.round_pending > 0 {
            continue;
        }

        // Round boundary: `executed` shots form a complete, deterministic
        // prefix, so the stopping decision is thread-count independent.
        // Re-check the deadline here too, so an expired job stops without
        // waiting to be drained chunk by chunk.
        if bounded && runtime.deadline.expired() {
            progress.timed_out = true;
        }
        let converged = !progress.timed_out
            && runtime.epsilon.is_some_and(|epsilon| {
                let dominant = progress.counts.values().copied().max().unwrap_or(0);
                wilson_half_width(dominant, progress.executed) <= epsilon
            });
        if progress.timed_out || converged || progress.executed >= runtime.shots {
            progress.early_stopped = converged && progress.executed < runtime.shots;
            progress.finished = true;
            progress.wall_time = shared.started.elapsed();
            drop(progress);
            // Decrement and notify under the queue mutex: a worker that found
            // the queue empty and read the old `active` value cannot reach
            // `wait()` while we hold the lock, so the notification cannot be
            // lost in its check-then-wait window.
            let queue = shared.queue.lock().expect("queue lock");
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.wake.notify_all();
            drop(queue);
        } else {
            // Build (and for dedup jobs presample) the next round before
            // touching the queue, so the queue lock is held only to push.
            let start = progress.executed;
            let round_started = Instant::now();
            let chunks = build_round(runtime, chunk.job, start);
            if runtime.dedup {
                progress
                    .stage_timings
                    .record(Stage::Presample, round_started.elapsed());
            }
            progress.round_pending = chunks.len();
            let mut queue = shared.queue.lock().expect("queue lock");
            queue.extend(chunks);
            if let Some(metrics) = &shared.metrics {
                metrics.observe_depth(queue.len());
            }
            drop(queue);
            drop(progress);
            shared.wake.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobfile::{CircuitSource, JobSpec};
    use qsdd_core::BackendKind;
    use qsdd_noise::NoiseModel;

    fn ghz_spec(name: &str, shots: u64, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(
            name,
            CircuitSource::Generator {
                kind: "ghz".to_string(),
                qubits: 5,
            },
            0,
        );
        spec.shots = shots;
        spec.seed = seed;
        spec
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let mut specs = vec![
            ghz_spec("a", 300, 1),
            ghz_spec("b", 700, 2),
            ghz_spec("c", 64, 3),
        ];
        specs[1].backend = BackendKind::Statevector;
        specs[2].epsilon = Some(0.04);
        specs[2].check_interval = 32;
        let reference = run_batch(&specs, &BatchOptions::with_threads(1));
        for threads in [2, 4] {
            let report = run_batch(&specs, &BatchOptions::with_threads(threads));
            for (a, b) in reference.jobs.iter().zip(report.jobs.iter()) {
                assert_eq!(a.results_json(), b.results_json());
            }
        }
    }

    #[test]
    fn intra_shot_parallelism_is_unobservable_in_reports() {
        let mut specs = vec![ghz_spec("a", 300, 1), ghz_spec("b", 200, 2)];
        specs[0].noise = NoiseModel::noiseless().with_depolarizing(0.01);
        specs[1].backend = BackendKind::Statevector;
        let reference = run_batch(&specs, &BatchOptions::with_threads(2));
        // A single worker with an explicit width skips the oversubscription
        // clamp, so (1, 2) and (1, 4) really install a pool on any machine.
        for (threads, intra) in [(2, 0), (2, 2), (1, 2), (1, 4)] {
            let options = BatchOptions::with_threads(threads).with_intra_threads(intra);
            let report = run_batch(&specs, &options);
            for (a, b) in reference.jobs.iter().zip(report.jobs.iter()) {
                assert_eq!(
                    a.results_json(),
                    b.results_json(),
                    "threads = {threads}, intra = {intra}"
                );
            }
        }
    }

    #[test]
    fn expired_deadlines_fail_jobs_without_poisoning_the_batch() {
        // An already-expired deadline on a large job: every chunk drains at
        // the boundary check, the job reports `timed_out`, and the healthy
        // sibling completes exactly as it would alone.
        let mut specs = vec![ghz_spec("doomed", 200_000, 1), ghz_spec("fine", 300, 2)];
        specs[0].timeout_ms = Some(1);
        std::thread::sleep(Duration::from_millis(5));
        let report = run_batch(&specs, &BatchOptions::with_threads(4));
        match &report.jobs[0].status {
            JobStatus::Failed(message) => {
                assert!(message.contains("timed_out"), "{message}");
                assert!(message.contains("1 ms"), "{message}");
            }
            other => panic!("expected timed_out failure, got {other:?}"),
        }
        // No partial aggregates leak into the report.
        assert!(report.jobs[0].counts.is_empty());
        assert_eq!(report.jobs[0].shots_executed, 0);
        assert!(matches!(report.jobs[1].status, JobStatus::Completed));
        let alone = run_batch(&specs[1..], &BatchOptions::with_threads(1));
        assert_eq!(report.jobs[1].results_json(), alone.jobs[0].results_json());

        // Weighted jobs pass the deadline into their single-piece driver.
        let mut weighted = ghz_spec("weighted-doomed", 200_000, 3);
        weighted.weighted = true;
        weighted.timeout_ms = Some(1);
        std::thread::sleep(Duration::from_millis(5));
        let report = run_batch(&[weighted], &BatchOptions::with_threads(2));
        assert!(
            matches!(&report.jobs[0].status, JobStatus::Failed(m) if m.contains("timed_out")),
            "{:?}",
            report.jobs[0].status
        );
    }

    #[test]
    fn counts_sum_to_executed_shots() {
        let specs = vec![ghz_spec("a", 500, 9)];
        let report = run_batch(&specs, &BatchOptions::with_threads(4));
        let job = &report.jobs[0];
        assert_eq!(job.shots_executed, 500);
        assert!(!job.early_stopped);
        assert_eq!(job.counts.values().sum::<u64>(), 500);
        assert!(job.dd_nodes_peak > 0);
        assert!(job.dd_nodes_avg > 0.0);
    }

    #[test]
    fn early_stopping_executes_a_shorter_prefix() {
        // A noiseless GHZ job: the dominant outcome sits near p = 0.5, so
        // the 95 % Wilson half-width is ~0.98/sqrt(n) and epsilon = 0.1
        // converges after a few hundred shots.
        let mut spec = ghz_spec("fast", 100_000, 5);
        spec.noise = NoiseModel::noiseless();
        spec.epsilon = Some(0.1);
        spec.check_interval = 64;
        let report = run_batch(&[spec], &BatchOptions::with_threads(3));
        let job = &report.jobs[0];
        assert!(job.early_stopped);
        assert!(
            job.shots_executed < 1000,
            "expected early stop, ran {} shots",
            job.shots_executed
        );
        // The executed prefix is a whole number of rounds.
        assert_eq!(job.shots_executed % 64, 0);
        assert_eq!(job.counts.values().sum::<u64>(), job.shots_executed);
    }

    #[test]
    fn failed_jobs_do_not_block_the_rest() {
        let mut broken = ghz_spec("broken", 100, 1);
        broken.source = CircuitSource::Qasm("/definitely/missing.qasm".into());
        let specs = vec![broken, ghz_spec("ok", 128, 2)];
        let report = run_batch(&specs, &BatchOptions::with_threads(2));
        assert!(!report.all_completed());
        assert!(matches!(report.jobs[0].status, JobStatus::Failed(_)));
        assert_eq!(report.jobs[0].shots_executed, 0);
        assert!(report.jobs[1].status.is_completed());
        assert_eq!(report.jobs[1].shots_executed, 128);
        assert_eq!(report.total_shots(), 128);
    }

    #[test]
    fn dedup_matches_the_per_shot_path_and_reports_sharing() {
        let mut spec = ghz_spec("dedup", 600, 11);
        spec.noise = NoiseModel::noiseless().with_depolarizing(0.002);
        let on = run_batch(&[spec.clone()], &BatchOptions::with_threads(3));
        let off = run_batch(&[spec], &BatchOptions::with_threads(3).without_dedup());
        let (on, off) = (&on.jobs[0], &off.jobs[0]);
        // Deduplication is unobservable in the results ...
        assert_eq!(on.counts, off.counts);
        assert_eq!(on.error_events, off.error_events);
        assert_eq!(on.shots_executed, off.shots_executed);
        assert_eq!(on.dd_nodes_peak, off.dd_nodes_peak);
        // ... but very visible in the trajectory accounting.
        assert!(
            on.unique_trajectories < on.shots_executed,
            "expected sharing, got {} trajectories for {} shots",
            on.unique_trajectories,
            on.shots_executed
        );
        assert!(on.dedup_hit_rate > 0.5);
        assert_eq!(off.unique_trajectories, off.shots_executed);
        assert_eq!(off.dedup_hit_rate, 0.0);
    }

    #[test]
    fn dedup_results_are_identical_across_thread_counts() {
        let mut specs = vec![ghz_spec("a", 300, 1), ghz_spec("b", 500, 2)];
        // Passive-only noise dedups every shot; paper noise mixes pattern
        // groups with live (damping) shots.
        specs[0].noise = NoiseModel::noiseless().with_depolarizing(0.01);
        specs[1].epsilon = Some(0.05);
        specs[1].check_interval = 64;
        let reference = run_batch(&specs, &BatchOptions::with_threads(1));
        for threads in [2, 4] {
            let report = run_batch(&specs, &BatchOptions::with_threads(threads));
            for (a, b) in reference.jobs.iter().zip(report.jobs.iter()) {
                assert_eq!(a.results_json(), b.results_json());
            }
        }
    }

    #[test]
    fn weighted_jobs_run_whole_and_report_covered_mass() {
        let mut spec = ghz_spec("weighted", 400, 21);
        spec.noise = NoiseModel::noiseless().with_depolarizing(0.004);
        spec.weighted = true;
        let reference = run_batch(&[spec.clone()], &BatchOptions::with_threads(1));
        let job = &reference.jobs[0];
        assert!(job.status.is_completed());
        assert_eq!(job.shots_executed, 400);
        assert_eq!(job.counts.values().sum::<u64>(), 400);
        assert!(
            job.covered_mass > 0.9,
            "expected near-complete coverage, got {}",
            job.covered_mass
        );
        assert!(job.enumerated_trajectories > 0);
        assert!(!job.early_stopped);
        // Weighted execution is single-piece and seed-derived, so the whole
        // report is identical for any worker count (and across repeats).
        for threads in [2, 4] {
            let report = run_batch(&[spec.clone()], &BatchOptions::with_threads(threads));
            assert_eq!(job.results_json(), report.jobs[0].results_json());
        }
    }

    #[test]
    fn weighted_jobs_interleave_with_sampled_jobs() {
        let mut weighted = ghz_spec("weighted", 256, 5);
        weighted.noise = NoiseModel::noiseless().with_phase_flip(0.01);
        weighted.weighted = true;
        let sampled = ghz_spec("sampled", 256, 5);
        let report = run_batch(&[weighted, sampled], &BatchOptions::with_threads(2));
        assert!(report.all_completed());
        for job in &report.jobs {
            assert_eq!(job.counts.values().sum::<u64>(), 256);
        }
        // Only the weighted job carries enumeration statistics.
        assert!(report.jobs[0].enumerated_trajectories > 0);
        assert_eq!(report.jobs[1].enumerated_trajectories, 0);
        assert_eq!(report.jobs[1].covered_mass, 0.0);
    }

    #[test]
    fn zero_shot_jobs_complete_immediately() {
        let report = run_batch(&[ghz_spec("empty", 0, 1)], &BatchOptions::with_threads(2));
        let job = &report.jobs[0];
        assert!(job.status.is_completed());
        assert_eq!(job.shots_executed, 0);
        assert!(job.counts.is_empty());
    }

    #[test]
    fn wilson_half_width_shrinks_with_samples_and_handles_edges() {
        assert!(wilson_half_width(0, 0).is_infinite());
        // Extreme proportions stay inside [0, 1]-sensible bounds.
        let extreme = wilson_half_width(100, 100);
        assert!(extreme > 0.0 && extreme < 0.1);
        let mut last = f64::INFINITY;
        for n in [16u64, 64, 256, 1024] {
            let width = wilson_half_width(n / 2, n);
            assert!(width < last);
            last = width;
        }
    }
}
