//! The shot-interleaving batch scheduler.
//!
//! All jobs share one worker pool. Work lives in a **global chunk queue**:
//! every entry is a small contiguous range of shot indices of one job, and
//! idle workers steal the next chunk regardless of which job it belongs to,
//! so shots from different jobs interleave and a giant job cannot starve
//! small ones.
//!
//! Each job's circuit is compiled once, into its [`ShotEngine`]'s program;
//! each worker keeps one long-lived [`ExecContext`] (which internally
//! caches per-back-end-kind state) and reuses it across every chunk of
//! every job it steals, so per-shot cost is pure execution — no operator
//! rebuilding, no per-shot allocation churn.
//!
//! Each job's shots are released in **rounds** of
//! [`JobSpec::check_interval`] shots. When the last chunk of a round
//! completes, the finishing worker either declares the job done (shot cap
//! reached, or the Wilson early-stop rule fired), or pushes the next round
//! to the *back* of the queue — which is what keeps the interleaving fair:
//! a 10⁶-shot job only ever occupies the queue with one round at a time.
//!
//! # Determinism
//!
//! Results are bit-identical for any thread count because
//!
//! 1. shot `i` of a job derives its generator from `(job seed, i)` alone
//!    (the [`ShotEngine`] contract), so the value of a shot does not depend
//!    on which worker runs it;
//! 2. histograms merge by addition, which is order-independent; and
//! 3. early stopping is only evaluated at round boundaries — fixed shot
//!    counts — over the complete prefix `0..executed`, so the *set* of
//!    executed shots is a deterministic prefix, never a race.
//!
//! Only the wall-clock fields of the report vary between runs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use qsdd_core::{ExecContext, ShotEngine};

use crate::jobfile::JobSpec;
use crate::report::{BatchReport, JobReport, JobStatus};

/// Shots per queue entry: small enough that jobs interleave at fine grain,
/// large enough that queue traffic stays negligible next to shot cost.
const CHUNK_SHOTS: u64 = 32;

/// The z-score of the 95 % Wilson confidence interval used for early
/// stopping.
pub const WILSON_Z: f64 = 1.96;

/// Scheduler knobs.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` uses all available cores.
    pub threads: usize,
}

impl BatchOptions {
    /// Options with an explicit thread count (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions { threads }
    }

    /// Resolves the effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Half-width of the Wilson score interval at [`WILSON_Z`] for `successes`
/// hits in `samples` trials.
///
/// The Wilson interval behaves well for proportions near 0 and 1 (where the
/// naive normal interval collapses), which matters because a converged job
/// is exactly one whose dominant outcome frequency is extreme.
///
/// ```
/// use qsdd_batch::scheduler::wilson_half_width;
///
/// // Quadrupling the sample size roughly halves the interval.
/// let wide = wilson_half_width(64, 128);
/// let tight = wilson_half_width(256, 512);
/// assert!(tight < wide);
/// assert!((wide / tight - 2.0).abs() < 0.1);
/// ```
pub fn wilson_half_width(successes: u64, samples: u64) -> f64 {
    if samples == 0 {
        return f64::INFINITY;
    }
    let n = samples as f64;
    let p = successes as f64 / n;
    let z = WILSON_Z;
    let denom = 1.0 + z * z / n;
    (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt()
}

/// A contiguous range of shot indices of one job.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    job: usize,
    start: u64,
    end: u64,
}

/// Mutable per-job aggregation state, guarded by one mutex per job so
/// workers on different jobs never contend.
#[derive(Debug, Default)]
struct JobProgress {
    counts: BTreeMap<u64, u64>,
    error_events: u64,
    dd_nodes_sum: u64,
    dd_nodes_peak: u64,
    executed: u64,
    /// Chunks of the current round still in flight.
    round_pending: usize,
    early_stopped: bool,
    finished: bool,
    wall_time: Duration,
}

/// A runnable job: its engine plus the knobs the scheduler needs.
struct JobRuntime {
    engine: ShotEngine,
    shots: u64,
    epsilon: Option<f64>,
    check_interval: u64,
    progress: Mutex<JobProgress>,
}

/// Everything the worker pool shares.
struct Shared {
    queue: Mutex<VecDeque<Chunk>>,
    wake: Condvar,
    /// Jobs that have not finished yet; workers exit when this hits zero and
    /// the queue is empty.
    active: AtomicUsize,
    started: Instant,
}

/// Runs all jobs of a batch on a shared worker pool and aggregates a
/// [`BatchReport`].
///
/// Jobs whose circuit fails to load (missing QASM file, parse error,
/// unknown generator) are reported as [`JobStatus::Failed`] and do not
/// prevent the remaining jobs from running.
pub fn run_batch(specs: &[JobSpec], options: &BatchOptions) -> BatchReport {
    let started = Instant::now();
    // Build one engine per job up front; transpilation happens here, once.
    let mut runtimes: Vec<Option<JobRuntime>> = Vec::with_capacity(specs.len());
    let mut failures: Vec<Option<String>> = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec.load_circuit() {
            Ok(circuit) => {
                runtimes.push(Some(JobRuntime {
                    engine: ShotEngine::new(
                        &circuit,
                        spec.backend,
                        spec.noise,
                        spec.seed,
                        spec.opt,
                    ),
                    shots: spec.shots,
                    epsilon: spec.epsilon,
                    check_interval: spec.check_interval,
                    progress: Mutex::new(JobProgress::default()),
                }));
                failures.push(None);
            }
            Err(message) => {
                runtimes.push(None);
                failures.push(Some(message));
            }
        }
    }

    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        active: AtomicUsize::new(0),
        started,
    };
    // Seed the queue with round 1 of every runnable job, in file order, so
    // every job makes progress from the first instant.
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        for (index, runtime) in runtimes.iter().enumerate() {
            let Some(runtime) = runtime else { continue };
            if runtime.shots == 0 {
                let mut progress = runtime.progress.lock().expect("progress lock");
                progress.finished = true;
                continue;
            }
            shared.active.fetch_add(1, Ordering::SeqCst);
            let mut progress = runtime.progress.lock().expect("progress lock");
            progress.round_pending = push_round(&mut queue, index, runtime, 0);
        }
    }

    let workers = options.effective_threads().max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared, &runtimes));
        }
    });

    let jobs = specs
        .iter()
        .zip(runtimes.iter())
        .zip(failures.iter())
        .map(|((spec, runtime), failure)| match runtime {
            Some(runtime) => {
                let progress = runtime.progress.lock().expect("progress lock");
                JobReport {
                    name: spec.name.clone(),
                    backend: spec.backend.to_string(),
                    status: JobStatus::Completed,
                    qubits: runtime.engine.num_qubits(),
                    shots_requested: spec.shots,
                    shots_executed: progress.executed,
                    early_stopped: progress.early_stopped,
                    counts: progress.counts.clone(),
                    error_events: progress.error_events,
                    dd_nodes_avg: if progress.executed == 0 {
                        0.0
                    } else {
                        progress.dd_nodes_sum as f64 / progress.executed as f64
                    },
                    dd_nodes_peak: progress.dd_nodes_peak,
                    wall_time: progress.wall_time,
                }
            }
            None => JobReport::failed(
                &spec.name,
                &spec.backend.to_string(),
                spec.shots,
                failure.clone().expect("failed jobs carry a message"),
            ),
        })
        .collect();

    BatchReport {
        jobs,
        threads: workers,
        total_wall_time: started.elapsed(),
    }
}

/// Enqueues the round of shots starting at `start` and returns its chunk
/// count.
fn push_round(queue: &mut VecDeque<Chunk>, job: usize, runtime: &JobRuntime, start: u64) -> usize {
    let end = (start + runtime.check_interval).min(runtime.shots);
    let mut pushed = 0;
    let mut cursor = start;
    while cursor < end {
        let chunk_end = (cursor + CHUNK_SHOTS).min(end);
        queue.push_back(Chunk {
            job,
            start: cursor,
            end: chunk_end,
        });
        cursor = chunk_end;
        pushed += 1;
    }
    pushed
}

fn worker_loop(shared: &Shared, runtimes: &[Option<JobRuntime>]) {
    // One long-lived execution context (internally caching per-back-end
    // state), reused across chunks *and* jobs: the context re-seats itself
    // when the stolen chunk belongs to a different job's program, and
    // merely rewinds when it belongs to the same one, so each worker
    // compiles nothing and allocates almost nothing in steady state. Reuse
    // is unobservable in the results (the ShotEngine contract), so the
    // interleaving stays bit-deterministic.
    let mut context = ExecContext::new();
    loop {
        // Steal the next chunk, or exit once every job has finished.
        let chunk = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(chunk) = queue.pop_front() {
                    break Some(chunk);
                }
                if shared.active.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                queue = shared.wake.wait(queue).expect("queue lock");
            }
        };
        let Some(chunk) = chunk else { return };
        let runtime = runtimes[chunk.job]
            .as_ref()
            .expect("only runnable jobs are enqueued");

        // Execute the chunk without holding any lock, through the worker's
        // long-lived context.
        let mut local_counts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut local_errors = 0u64;
        let mut local_nodes_sum = 0u64;
        let mut local_nodes_peak = 0u64;
        for shot in chunk.start..chunk.end {
            let sample = runtime.engine.run_shot_in(&mut context, shot);
            *local_counts.entry(sample.outcome).or_insert(0) += 1;
            local_errors += sample.error_events;
            local_nodes_sum += sample.dd_nodes;
            local_nodes_peak = local_nodes_peak.max(sample.dd_nodes_peak);
        }

        // Merge, and if this was the round's last chunk, decide what's next.
        let mut progress = runtime.progress.lock().expect("progress lock");
        for (outcome, count) in local_counts {
            *progress.counts.entry(outcome).or_insert(0) += count;
        }
        progress.error_events += local_errors;
        progress.dd_nodes_sum += local_nodes_sum;
        progress.dd_nodes_peak = progress.dd_nodes_peak.max(local_nodes_peak);
        progress.executed += chunk.end - chunk.start;
        progress.round_pending -= 1;
        if progress.round_pending > 0 {
            continue;
        }

        // Round boundary: `executed` shots form a complete, deterministic
        // prefix, so the stopping decision is thread-count independent.
        let converged = runtime.epsilon.is_some_and(|epsilon| {
            let dominant = progress.counts.values().copied().max().unwrap_or(0);
            wilson_half_width(dominant, progress.executed) <= epsilon
        });
        if converged || progress.executed >= runtime.shots {
            progress.early_stopped = converged && progress.executed < runtime.shots;
            progress.finished = true;
            progress.wall_time = shared.started.elapsed();
            drop(progress);
            // Decrement and notify under the queue mutex: a worker that found
            // the queue empty and read the old `active` value cannot reach
            // `wait()` while we hold the lock, so the notification cannot be
            // lost in its check-then-wait window.
            let queue = shared.queue.lock().expect("queue lock");
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.wake.notify_all();
            drop(queue);
        } else {
            let start = progress.executed;
            let mut queue = shared.queue.lock().expect("queue lock");
            progress.round_pending = push_round(&mut queue, chunk.job, runtime, start);
            drop(queue);
            drop(progress);
            shared.wake.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobfile::{CircuitSource, JobSpec};
    use qsdd_core::BackendKind;
    use qsdd_noise::NoiseModel;

    fn ghz_spec(name: &str, shots: u64, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(
            name,
            CircuitSource::Generator {
                kind: "ghz".to_string(),
                qubits: 5,
            },
            0,
        );
        spec.shots = shots;
        spec.seed = seed;
        spec
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let mut specs = vec![
            ghz_spec("a", 300, 1),
            ghz_spec("b", 700, 2),
            ghz_spec("c", 64, 3),
        ];
        specs[1].backend = BackendKind::Statevector;
        specs[2].epsilon = Some(0.04);
        specs[2].check_interval = 32;
        let reference = run_batch(&specs, &BatchOptions::with_threads(1));
        for threads in [2, 4] {
            let report = run_batch(&specs, &BatchOptions::with_threads(threads));
            for (a, b) in reference.jobs.iter().zip(report.jobs.iter()) {
                assert_eq!(a.results_json(), b.results_json());
            }
        }
    }

    #[test]
    fn counts_sum_to_executed_shots() {
        let specs = vec![ghz_spec("a", 500, 9)];
        let report = run_batch(&specs, &BatchOptions::with_threads(4));
        let job = &report.jobs[0];
        assert_eq!(job.shots_executed, 500);
        assert!(!job.early_stopped);
        assert_eq!(job.counts.values().sum::<u64>(), 500);
        assert!(job.dd_nodes_peak > 0);
        assert!(job.dd_nodes_avg > 0.0);
    }

    #[test]
    fn early_stopping_executes_a_shorter_prefix() {
        // A noiseless GHZ job: the dominant outcome sits near p = 0.5, so
        // the 95 % Wilson half-width is ~0.98/sqrt(n) and epsilon = 0.1
        // converges after a few hundred shots.
        let mut spec = ghz_spec("fast", 100_000, 5);
        spec.noise = NoiseModel::noiseless();
        spec.epsilon = Some(0.1);
        spec.check_interval = 64;
        let report = run_batch(&[spec], &BatchOptions::with_threads(3));
        let job = &report.jobs[0];
        assert!(job.early_stopped);
        assert!(
            job.shots_executed < 1000,
            "expected early stop, ran {} shots",
            job.shots_executed
        );
        // The executed prefix is a whole number of rounds.
        assert_eq!(job.shots_executed % 64, 0);
        assert_eq!(job.counts.values().sum::<u64>(), job.shots_executed);
    }

    #[test]
    fn failed_jobs_do_not_block_the_rest() {
        let mut broken = ghz_spec("broken", 100, 1);
        broken.source = CircuitSource::Qasm("/definitely/missing.qasm".into());
        let specs = vec![broken, ghz_spec("ok", 128, 2)];
        let report = run_batch(&specs, &BatchOptions::with_threads(2));
        assert!(!report.all_completed());
        assert!(matches!(report.jobs[0].status, JobStatus::Failed(_)));
        assert_eq!(report.jobs[0].shots_executed, 0);
        assert!(report.jobs[1].status.is_completed());
        assert_eq!(report.jobs[1].shots_executed, 128);
        assert_eq!(report.total_shots(), 128);
    }

    #[test]
    fn zero_shot_jobs_complete_immediately() {
        let report = run_batch(&[ghz_spec("empty", 0, 1)], &BatchOptions::with_threads(2));
        let job = &report.jobs[0];
        assert!(job.status.is_completed());
        assert_eq!(job.shots_executed, 0);
        assert!(job.counts.is_empty());
    }

    #[test]
    fn wilson_half_width_shrinks_with_samples_and_handles_edges() {
        assert!(wilson_half_width(0, 0).is_infinite());
        // Extreme proportions stay inside [0, 1]-sensible bounds.
        let extreme = wilson_half_width(100, 100);
        assert!(extreme > 0.0 && extreme < 0.1);
        let mut last = f64::INFINITY;
        for n in [16u64, 64, 256, 1024] {
            let width = wilson_half_width(n / 2, n);
            assert!(width < last);
            last = width;
        }
    }
}
