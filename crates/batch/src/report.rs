//! Aggregated batch results and their JSON / CSV serialisations.
//!
//! A [`BatchReport`] holds one [`JobReport`] per job in the order the job
//! file declared them. All per-job *results* (histograms, error counts,
//! executed shots, decision-diagram node statistics) are deterministic for
//! fixed seeds regardless of thread count; only the wall-clock fields vary
//! between runs. [`JobReport::results_json`] therefore serialises exactly
//! the deterministic subset, which the integration tests byte-compare
//! across thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::json::{self, Value};
use qsdd_telemetry::{Stage, StageTimings};

/// Outcome of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The job executed to completion (possibly stopping early).
    Completed,
    /// The job could not run (circuit failed to load/parse); the message
    /// says why.
    Failed(String),
}

impl JobStatus {
    /// `true` for [`JobStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed)
    }
}

/// Aggregated results of a single job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    /// Job name from the job file.
    pub name: String,
    /// Back-end that executed the shots (`dd` / `dense`).
    pub backend: String,
    /// Completion status.
    pub status: JobStatus,
    /// Qubit count of the job's circuit (`0` when the circuit failed to
    /// load).
    pub qubits: usize,
    /// Shot cap requested in the job file.
    pub shots_requested: u64,
    /// Shots actually executed (smaller than requested when early stopping
    /// triggered).
    pub shots_executed: u64,
    /// Whether the Wilson-interval early-stop rule fired.
    pub early_stopped: bool,
    /// Histogram of measurement outcomes (basis index → count), ordered for
    /// deterministic emission.
    pub counts: BTreeMap<u64, u64>,
    /// Total stochastic error events over all executed shots.
    pub error_events: u64,
    /// Mean decision-diagram node count of the final per-shot states
    /// (`0.0` on the dense back-end).
    pub dd_nodes_avg: f64,
    /// Peak decision-diagram node count reached at any point *during* any
    /// shot — the memory high-water mark of the job, sampled after every
    /// applied operation (not just at shot end).
    pub dd_nodes_peak: u64,
    /// Trajectories actually simulated: distinct presampled error patterns
    /// plus live shots. Equals `shots_executed` when the job ran on the
    /// per-shot path (deduplication off or unsupported).
    pub unique_trajectories: u64,
    /// Fraction of executed shots served from another shot's trajectory
    /// (`1 - unique_trajectories / shots_executed`; `0.0` without
    /// deduplication).
    pub dedup_hit_rate: f64,
    /// Probability mass covered by weighted trajectory enumeration
    /// (`0.0` when the job ran on a sampling path).
    pub covered_mass: f64,
    /// Trajectories enumerated (and simulated exactly once each) by the
    /// weighted driver (`0` on the sampling paths).
    pub enumerated_trajectories: u64,
    /// Time from batch start until the job's last shot finished.
    pub wall_time: Duration,
    /// Wall-time breakdown by pipeline stage (compile, presample, execute,
    /// ...). A timing field like `wall_time`: it varies between runs and is
    /// serialised in the timing layer (`stage_seconds`), never in
    /// [`Self::results_json`].
    pub stage_timings: StageTimings,
}

impl JobReport {
    /// A report for a job that failed before executing any shot.
    pub fn failed(name: &str, backend: &str, shots_requested: u64, message: String) -> Self {
        JobReport {
            name: name.to_string(),
            backend: backend.to_string(),
            status: JobStatus::Failed(message),
            qubits: 0,
            shots_requested,
            shots_executed: 0,
            early_stopped: false,
            counts: BTreeMap::new(),
            error_events: 0,
            dd_nodes_avg: 0.0,
            dd_nodes_peak: 0,
            unique_trajectories: 0,
            dedup_hit_rate: 0.0,
            covered_mass: 0.0,
            enumerated_trajectories: 0,
            wall_time: Duration::ZERO,
            stage_timings: StageTimings::new(),
        }
    }

    /// Mean stochastic error events per executed shot.
    pub fn error_rate(&self) -> f64 {
        if self.shots_executed == 0 {
            return 0.0;
        }
        self.error_events as f64 / self.shots_executed as f64
    }

    /// The most frequent outcome, ties broken towards the smallest index.
    pub fn most_frequent(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by_key(|(&outcome, &count)| (count, std::cmp::Reverse(outcome)))
            .map(|(&outcome, _)| outcome)
    }

    /// The deterministic subset of the report as a JSON value: everything
    /// except wall-clock timing. For fixed per-job seeds this is identical
    /// across thread counts and machines.
    pub fn results_value(&self) -> Value {
        let mut pairs = vec![
            ("name".to_string(), Value::from(self.name.as_str())),
            ("backend".to_string(), Value::from(self.backend.as_str())),
            (
                "status".to_string(),
                match &self.status {
                    JobStatus::Completed => Value::from("completed"),
                    JobStatus::Failed(message) => {
                        Value::object(vec![("failed".to_string(), Value::from(message.as_str()))])
                    }
                },
            ),
            ("qubits".to_string(), Value::from(self.qubits)),
            (
                "shots_requested".to_string(),
                Value::from(self.shots_requested),
            ),
            (
                "shots_executed".to_string(),
                Value::from(self.shots_executed),
            ),
            ("early_stopped".to_string(), Value::from(self.early_stopped)),
            ("error_events".to_string(), Value::from(self.error_events)),
            ("error_rate".to_string(), Value::from(self.error_rate())),
            ("dd_nodes_avg".to_string(), Value::from(self.dd_nodes_avg)),
            ("dd_nodes_peak".to_string(), Value::from(self.dd_nodes_peak)),
            (
                "unique_trajectories".to_string(),
                Value::from(self.unique_trajectories),
            ),
            (
                "dedup_hit_rate".to_string(),
                Value::from(self.dedup_hit_rate),
            ),
            ("covered_mass".to_string(), Value::from(self.covered_mass)),
            (
                "enumerated_trajectories".to_string(),
                Value::from(self.enumerated_trajectories),
            ),
        ];
        let counts: Vec<Value> = self
            .counts
            .iter()
            .map(|(&outcome, &count)| {
                Value::object(vec![
                    ("outcome".to_string(), Value::from(outcome)),
                    ("count".to_string(), Value::from(count)),
                ])
            })
            .collect();
        pairs.push(("counts".to_string(), Value::Array(counts)));
        Value::object(pairs)
    }

    /// [`Self::results_value`] as a compact JSON string (the byte-stable
    /// per-job artifact).
    pub fn results_json(&self) -> String {
        self.results_value().to_string()
    }

    /// The full report (results plus timing) as a JSON value.
    pub fn to_value(&self) -> Value {
        let Value::Object(mut pairs) = self.results_value() else {
            unreachable!("results_value always builds an object");
        };
        pairs.push((
            "wall_time_secs".to_string(),
            Value::from(self.wall_time.as_secs_f64()),
        ));
        pairs.push((
            "stage_seconds".to_string(),
            Value::object(
                Stage::ALL
                    .iter()
                    .map(|&stage| {
                        (
                            stage.name().to_string(),
                            Value::from(self.stage_timings.get(stage).as_secs_f64()),
                        )
                    })
                    .collect(),
            ),
        ));
        Value::Object(pairs)
    }

    /// Rebuilds a report from a value produced by [`Self::to_value`] (or
    /// [`Self::results_value`]; the timing field is then zero).
    pub fn from_value(value: &Value) -> Result<JobReport, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job report: missing string `{key}`"))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("job report: missing integer `{key}`"))
        };
        let status = match value.get("status") {
            Some(Value::String(s)) if s == "completed" => JobStatus::Completed,
            Some(other) => JobStatus::Failed(
                other
                    .get("failed")
                    .and_then(Value::as_str)
                    .ok_or("job report: malformed `status`")?
                    .to_string(),
            ),
            None => return Err("job report: missing `status`".to_string()),
        };
        let mut counts = BTreeMap::new();
        for entry in value
            .get("counts")
            .and_then(Value::as_array)
            .ok_or("job report: missing `counts` array")?
        {
            let outcome = entry
                .get("outcome")
                .and_then(Value::as_u64)
                .ok_or("job report: malformed count entry")?;
            let count = entry
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("job report: malformed count entry")?;
            counts.insert(outcome, count);
        }
        Ok(JobReport {
            name: str_field("name")?,
            backend: str_field("backend")?,
            status,
            qubits: num_field("qubits")? as usize,
            shots_requested: num_field("shots_requested")?,
            shots_executed: num_field("shots_executed")?,
            early_stopped: value
                .get("early_stopped")
                .and_then(Value::as_bool)
                .ok_or("job report: missing `early_stopped`")?,
            counts,
            error_events: num_field("error_events")?,
            dd_nodes_avg: value
                .get("dd_nodes_avg")
                .and_then(Value::as_f64)
                .ok_or("job report: missing `dd_nodes_avg`")?,
            dd_nodes_peak: num_field("dd_nodes_peak")?,
            // Deduplication fields arrived after the format's introduction:
            // parse leniently so reports written by earlier versions (every
            // shot its own trajectory) still round-trip.
            unique_trajectories: value
                .get("unique_trajectories")
                .and_then(Value::as_u64)
                .unwrap_or_else(|| {
                    value
                        .get("shots_executed")
                        .and_then(Value::as_u64)
                        .unwrap_or(0)
                }),
            dedup_hit_rate: value
                .get("dedup_hit_rate")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            // Weighted-enumeration fields are newer still: reports from
            // sampling-only versions parse as "not weighted".
            covered_mass: value
                .get("covered_mass")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            enumerated_trajectories: value
                .get("enumerated_trajectories")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            wall_time: Duration::from_secs_f64(
                value
                    .get("wall_time_secs")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            ),
            stage_timings: {
                // Nanosecond-exact round trip: stage durations are far below
                // the ~2^52 ns point where `f64` seconds lose nanoseconds.
                let mut timings = StageTimings::new();
                if let Some(stages) = value.get("stage_seconds") {
                    for &stage in &Stage::ALL {
                        if let Some(secs) = stages.get(stage.name()).and_then(Value::as_f64) {
                            timings.record(stage, Duration::from_secs_f64(secs));
                        }
                    }
                }
                timings
            },
        })
    }
}

/// Aggregated results of a whole batch run.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Per-job reports in job-file order.
    pub jobs: Vec<JobReport>,
    /// Worker threads the scheduler ran with.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub total_wall_time: Duration,
}

impl BatchReport {
    /// `true` when every job completed.
    pub fn all_completed(&self) -> bool {
        self.jobs.iter().all(|job| job.status.is_completed())
    }

    /// Total shots executed across all jobs.
    pub fn total_shots(&self) -> u64 {
        self.jobs.iter().map(|job| job.shots_executed).sum()
    }

    /// The report as a JSON value (insertion-ordered, deterministic except
    /// for the wall-clock fields).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("format".to_string(), Value::from("qsdd-batch-report/1")),
            ("threads".to_string(), Value::from(self.threads)),
            (
                "total_wall_time_secs".to_string(),
                Value::from(self.total_wall_time.as_secs_f64()),
            ),
            ("total_shots".to_string(), Value::from(self.total_shots())),
            (
                "jobs".to_string(),
                Value::Array(self.jobs.iter().map(JobReport::to_value).collect()),
            ),
        ])
    }

    /// The report as an indented JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty_string()
    }

    /// Parses a document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<BatchReport, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        if value.get("format").and_then(Value::as_str) != Some("qsdd-batch-report/1") {
            return Err("not a qsdd-batch-report/1 document".to_string());
        }
        let jobs = value
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("missing `jobs` array")?
            .iter()
            .map(JobReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchReport {
            jobs,
            threads: value
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or("missing `threads`")? as usize,
            total_wall_time: Duration::from_secs_f64(
                value
                    .get("total_wall_time_secs")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            ),
        })
    }

    /// The report as CSV: a header line plus one summary row per job.
    ///
    /// Histograms do not fit a flat table, so each row carries the most
    /// frequent outcome and its count; the JSON format holds the full
    /// histogram. Failure messages are quoted with doubled inner quotes per
    /// RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "job,backend,status,qubits,shots_requested,shots_executed,early_stopped,\
             error_events,error_rate,top_outcome,top_count,dd_nodes_avg,dd_nodes_peak,\
             unique_trajectories,dedup_hit_rate,covered_mass,enumerated_trajectories,\
             wall_time_secs\n",
        );
        for job in &self.jobs {
            let status = match &job.status {
                JobStatus::Completed => "completed".to_string(),
                JobStatus::Failed(message) => csv_escape(&format!("failed: {message}")),
            };
            let (top_outcome, top_count) = job
                .most_frequent()
                .map(|outcome| (outcome.to_string(), job.counts[&outcome].to_string()))
                .unwrap_or_default();
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                csv_escape(&job.name),
                job.backend,
                status,
                job.qubits,
                job.shots_requested,
                job.shots_executed,
                job.early_stopped,
                job.error_events,
                job.error_rate(),
                top_outcome,
                top_count,
                job.dd_nodes_avg,
                job.dd_nodes_peak,
                job.unique_trajectories,
                job.dedup_hit_rate,
                job.covered_mass,
                job.enumerated_trajectories,
                job.wall_time.as_secs_f64()
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

/// Quotes a free-text CSV field per RFC 4180 when it contains a comma,
/// quote or newline; plain fields pass through unchanged.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BatchReport {
        let mut counts = BTreeMap::new();
        counts.insert(0, 180);
        counts.insert(7, 190);
        BatchReport {
            jobs: vec![
                JobReport {
                    name: "ghz".to_string(),
                    backend: "dd".to_string(),
                    status: JobStatus::Completed,
                    qubits: 3,
                    shots_requested: 1000,
                    shots_executed: 370,
                    early_stopped: true,
                    counts,
                    error_events: 12,
                    dd_nodes_avg: 4.5,
                    dd_nodes_peak: 7,
                    unique_trajectories: 21,
                    dedup_hit_rate: 1.0 - 21.0 / 370.0,
                    covered_mass: 0.875,
                    enumerated_trajectories: 9,
                    wall_time: Duration::from_millis(250),
                    stage_timings: {
                        let mut timings = StageTimings::new();
                        timings.record(Stage::Compile, Duration::from_nanos(1_234_567));
                        timings.record(Stage::Execute, Duration::from_nanos(248_000_001));
                        timings
                    },
                },
                JobReport::failed("broken", "dense", 50, "cannot read `x.qasm`".to_string()),
            ],
            threads: 4,
            total_wall_time: Duration::from_millis(300),
        }
    }

    #[test]
    fn json_round_trips_losslessly() {
        let report = sample_report();
        let parsed = BatchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn results_json_excludes_timing() {
        let job = &sample_report().jobs[0];
        let text = job.results_json();
        assert!(!text.contains("wall_time"));
        assert!(text.contains("\"shots_executed\":370"));
        let round = JobReport::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(round.wall_time, Duration::ZERO);
        assert_eq!(round.counts, job.counts);
    }

    #[test]
    fn csv_has_one_row_per_job() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("job,backend,status"));
        assert!(lines[1].starts_with("ghz,dd,completed,3,1000,370,true,12,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        assert!(lines[2].contains("failed: cannot read `x.qasm`"));
    }

    #[test]
    fn csv_quotes_fields_containing_delimiters() {
        let mut report = sample_report();
        report.jobs[0].name = "ghz,16 \"wide\"".to_string();
        report.jobs[1].status = JobStatus::Failed("bad, very bad".to_string());
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // RFC 4180: embedded commas force quoting, embedded quotes double.
        assert!(lines[1].starts_with("\"ghz,16 \"\"wide\"\"\",dd,"));
        assert!(lines[2].contains("\"failed: bad, very bad\""));
    }

    #[test]
    fn most_frequent_breaks_ties_towards_smaller_outcomes() {
        let mut job = sample_report().jobs[0].clone();
        job.counts.insert(0, 190);
        assert_eq!(job.most_frequent(), Some(0));
        job.counts.clear();
        assert_eq!(job.most_frequent(), None);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(BatchReport::from_json("{}").is_err());
        assert!(BatchReport::from_json("not json").is_err());
    }
}
