//! The batch job-file format and its parser.
//!
//! A job file is plain text: one stanza per job, opened by a `[job NAME]`
//! header and followed by `key = value` lines. Blank lines and lines starting
//! with `#` or `;` are ignored; inline trailing comments are not supported.
//!
//! ```text
//! # Mixed demo batch.
//! [job ghz-early]
//! circuit = generate ghz 8
//! backend = dd
//! shots = 4000
//! seed = 11
//! noiseless = true
//! # stop early once the 95 % Wilson CI is this tight
//! epsilon = 0.05
//!
//! [job bell-file]
//! circuit = qasm bell.qasm
//! backend = dense
//! shots = 500
//! opt = 2
//! ```
//!
//! Recognised keys (all optional except `circuit`):
//!
//! | Key | Meaning | Default |
//! |-----|---------|---------|
//! | `circuit` | `generate <name> <qubits>` or `qasm <path>` | *required* |
//! | `backend` | `dd` or `dense` | `dd` |
//! | `shots` | shot cap for the job | `1000` |
//! | `seed` | per-job master seed | `2021 + job index` |
//! | `opt` | transpiler level `0`/`1`/`2` | `0` |
//! | `noiseless` | `true` disables all noise | `false` |
//! | `depolarizing` / `damping` / `phaseflip` | per-channel probabilities | paper defaults |
//! | `epsilon` | Wilson-CI half-width that triggers early stopping | off |
//! | `check` | shots between early-stop checkpoints | `256` |
//! | `weighted` | `true` enables weighted trajectory enumeration | `false` |
//! | `timeout_ms` | per-job deadline in milliseconds; an expired job reports `timed_out` | off |
//!
//! QASM paths are resolved relative to the job file's directory when parsed
//! via [`parse_file`].

use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use qsdd_circuit::{generators, qasm, Circuit};
use qsdd_core::BackendKind;
use qsdd_noise::NoiseModel;
use qsdd_transpile::OptLevel;

/// Default shot cap when a stanza omits `shots`.
pub const DEFAULT_SHOTS: u64 = 1000;
/// Default early-stop checkpoint interval (`check` key).
pub const DEFAULT_CHECK_INTERVAL: u64 = 256;

/// Where a job's circuit comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// A built-in generator (`circuit = generate ghz 8`).
    Generator {
        /// Generator name as accepted by [`generators::by_name`].
        kind: String,
        /// Number of qubits to generate.
        qubits: usize,
    },
    /// An OpenQASM 2.0 file (`circuit = qasm path/to/file.qasm`).
    Qasm(PathBuf),
}

impl fmt::Display for CircuitSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitSource::Generator { kind, qubits } => write!(f, "generate {kind} {qubits}"),
            CircuitSource::Qasm(path) => write!(f, "qasm {}", path.display()),
        }
    }
}

/// One fully-resolved job stanza.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Job name from the stanza header (unique within a file).
    pub name: String,
    /// Circuit source.
    pub source: CircuitSource,
    /// Simulation back-end.
    pub backend: BackendKind,
    /// Maximum number of stochastic shots.
    pub shots: u64,
    /// Per-job master seed (shot `i` derives its generator from it).
    pub seed: u64,
    /// Transpiler optimization level applied once before the shots.
    pub opt: OptLevel,
    /// Noise model applied after every gate.
    pub noise: NoiseModel,
    /// Early-stopping target: stop once the dominant outcome's 95 % Wilson
    /// confidence interval has half-width `<= epsilon`. `None` disables it.
    pub epsilon: Option<f64>,
    /// Shots between early-stop checkpoints (also the scheduling round
    /// size); determinism requires checks at fixed shot counts.
    pub check_interval: u64,
    /// Run the job through the weighted-enumeration driver (see
    /// `qsdd_core::weighted`) with default options instead of the sampling
    /// loop. Incompatible with `epsilon` early stopping (the weighted
    /// driver runs the job in one piece).
    pub weighted: bool,
    /// Cooperative per-job deadline in milliseconds (`None` = unbounded):
    /// the scheduler stops handing out the job's chunks once it expires and
    /// reports the job as failed with a `timed_out` message. Shots already
    /// simulated for it are discarded, never partially reported.
    pub timeout_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with all-default knobs for the given name and source.
    ///
    /// `index` is the job's position in the file; it seeds the default
    /// per-job seed so two default jobs never share a random stream.
    pub fn new(name: &str, source: CircuitSource, index: usize) -> Self {
        JobSpec {
            name: name.to_string(),
            source,
            backend: BackendKind::DecisionDiagram,
            shots: DEFAULT_SHOTS,
            seed: 2021 + index as u64,
            opt: OptLevel::O0,
            noise: NoiseModel::paper_defaults(),
            epsilon: None,
            check_interval: DEFAULT_CHECK_INTERVAL,
            weighted: false,
            timeout_ms: None,
        }
    }

    /// Materialises the job's circuit (running the generator or loading and
    /// parsing the QASM file).
    pub fn load_circuit(&self) -> Result<Circuit, String> {
        match &self.source {
            CircuitSource::Generator { kind, qubits } => generators::by_name(kind, *qubits)
                .ok_or_else(|| match generators::min_qubits(kind) {
                    Some(min) => {
                        format!("generator `{kind}` needs at least {min} qubit(s), got {qubits}")
                    }
                    None => format!("unknown generator `{kind}`"),
                }),
            CircuitSource::Qasm(path) => {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
                qasm::parse_source(&source).map_err(|e| e.to_string())
            }
        }
    }
}

/// A job-file syntax or semantics error, with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFileError {
    /// 1-based line the error was detected on (`0` for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl JobFileError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        JobFileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for JobFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "job file: {}", self.message)
        } else {
            write!(f, "job file line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for JobFileError {}

/// Reads and parses a job file; relative QASM paths resolve against the
/// file's directory.
pub fn parse_file(path: &Path) -> Result<Vec<JobSpec>, JobFileError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| JobFileError::new(0, format!("cannot read `{}`: {e}", path.display())))?;
    parse_str(&source, path.parent())
}

/// Parses job-file text. `base_dir`, when given, anchors relative QASM
/// paths.
pub fn parse_str(source: &str, base_dir: Option<&Path>) -> Result<Vec<JobSpec>, JobFileError> {
    let mut jobs: Vec<JobSpec> = Vec::new();
    // The stanza currently being filled: spec plus the header line (for
    // "missing circuit" diagnostics) and whether `circuit` was seen.
    let mut current: Option<(JobSpec, usize, bool)> = None;
    // Noise keys are folded together once the stanza closes.
    let mut noise_overrides: NoiseOverrides = NoiseOverrides::default();

    for (index, raw_line) in source.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .and_then(|h| h.strip_prefix("job"))
                .filter(|rest| rest.is_empty() || rest.starts_with(char::is_whitespace))
                .map(str::trim)
                .ok_or_else(|| {
                    JobFileError::new(line_no, format!("malformed stanza header `{line}`"))
                })?;
            if name.is_empty() {
                return Err(JobFileError::new(line_no, "job name must not be empty"));
            }
            if jobs.iter().any(|j| j.name == name)
                || current.as_ref().is_some_and(|(j, _, _)| j.name == name)
            {
                return Err(JobFileError::new(
                    line_no,
                    format!("duplicate job `{name}`"),
                ));
            }
            finish_stanza(&mut jobs, current.take(), &mut noise_overrides)?;
            let placeholder = CircuitSource::Generator {
                kind: String::new(),
                qubits: 0,
            };
            current = Some((JobSpec::new(name, placeholder, jobs.len()), line_no, false));
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            JobFileError::new(line_no, format!("expected `key = value`, got `{line}`"))
        })?;
        let (key, value) = (key.trim(), value.trim());
        let Some((job, _, has_circuit)) = current.as_mut() else {
            return Err(JobFileError::new(
                line_no,
                format!("`{key}` appears before the first [job ...] stanza"),
            ));
        };
        match key {
            "circuit" => {
                job.source = parse_source_value(value, base_dir)
                    .map_err(|message| JobFileError::new(line_no, message))?;
                *has_circuit = true;
            }
            "backend" => {
                job.backend = BackendKind::from_str(value)
                    .map_err(|message| JobFileError::new(line_no, message))?;
            }
            "shots" => job.shots = parse_num(key, value, line_no)?,
            "seed" => job.seed = parse_num(key, value, line_no)?,
            "check" => {
                job.check_interval = parse_num(key, value, line_no)?;
                if job.check_interval == 0 {
                    return Err(JobFileError::new(line_no, "`check` must be positive"));
                }
            }
            "opt" => {
                job.opt = value
                    .parse::<OptLevel>()
                    .map_err(|message| JobFileError::new(line_no, message))?;
            }
            "epsilon" => {
                let eps = parse_float(key, value, line_no)?;
                if !(eps > 0.0 && eps < 1.0) {
                    return Err(JobFileError::new(
                        line_no,
                        format!("`epsilon` must be in (0, 1), got {value}"),
                    ));
                }
                job.epsilon = Some(eps);
            }
            "weighted" => job.weighted = parse_bool(key, value, line_no)?,
            "timeout_ms" => {
                let ms = parse_num(key, value, line_no)?;
                if ms == 0 {
                    return Err(JobFileError::new(line_no, "`timeout_ms` must be positive"));
                }
                job.timeout_ms = Some(ms);
            }
            "noiseless" => {
                noise_overrides.noiseless = parse_bool(key, value, line_no)?;
            }
            "depolarizing" => {
                noise_overrides.depolarizing = Some(parse_probability(key, value, line_no)?)
            }
            "damping" => noise_overrides.damping = Some(parse_probability(key, value, line_no)?),
            "phaseflip" => {
                noise_overrides.phase_flip = Some(parse_probability(key, value, line_no)?)
            }
            other => {
                return Err(JobFileError::new(line_no, format!("unknown key `{other}`")));
            }
        }
    }
    finish_stanza(&mut jobs, current.take(), &mut noise_overrides)?;
    if jobs.is_empty() {
        return Err(JobFileError::new(0, "no [job ...] stanzas found"));
    }
    Ok(jobs)
}

/// Per-stanza noise keys, folded into a [`NoiseModel`] when the stanza ends.
#[derive(Clone, Debug, Default)]
struct NoiseOverrides {
    noiseless: bool,
    depolarizing: Option<f64>,
    damping: Option<f64>,
    phase_flip: Option<f64>,
}

fn finish_stanza(
    jobs: &mut Vec<JobSpec>,
    current: Option<(JobSpec, usize, bool)>,
    noise: &mut NoiseOverrides,
) -> Result<(), JobFileError> {
    let overrides = std::mem::take(noise);
    let Some((mut job, header_line, has_circuit)) = current else {
        return Ok(());
    };
    if !has_circuit {
        return Err(JobFileError::new(
            header_line,
            format!("job `{}` is missing the `circuit` key", job.name),
        ));
    }
    if job.weighted && job.epsilon.is_some() {
        return Err(JobFileError::new(
            header_line,
            format!(
                "job `{}` cannot combine `weighted` with `epsilon` early stopping",
                job.name
            ),
        ));
    }
    job.noise = if overrides.noiseless {
        NoiseModel::noiseless()
    } else {
        let defaults = NoiseModel::paper_defaults();
        NoiseModel::new(
            overrides
                .depolarizing
                .unwrap_or(defaults.depolarizing_prob()),
            overrides
                .damping
                .unwrap_or(defaults.amplitude_damping_prob()),
            overrides.phase_flip.unwrap_or(defaults.phase_flip_prob()),
        )
    };
    jobs.push(job);
    Ok(())
}

fn parse_source_value(value: &str, base_dir: Option<&Path>) -> Result<CircuitSource, String> {
    let mut parts = value.split_whitespace();
    match parts.next() {
        Some("generate") => {
            let kind = parts
                .next()
                .ok_or("`circuit = generate` needs a generator name")?;
            let min = generators::min_qubits(kind)
                .ok_or_else(|| format!("unknown generator `{kind}`"))?;
            let qubits: usize = parts
                .next()
                .ok_or("`circuit = generate` needs a qubit count")?
                .parse()
                .map_err(|_| "qubit count must be an integer".to_string())?;
            if qubits < min {
                return Err(format!(
                    "generator `{kind}` needs at least {min} qubit(s), got {qubits}"
                ));
            }
            if parts.next().is_some() {
                return Err("trailing tokens after generator spec".to_string());
            }
            Ok(CircuitSource::Generator {
                kind: kind.to_string(),
                qubits,
            })
        }
        Some("qasm") => {
            let raw: PathBuf = parts.collect::<Vec<_>>().join(" ").into();
            if raw.as_os_str().is_empty() {
                return Err("`circuit = qasm` needs a file path".to_string());
            }
            let path = match base_dir {
                Some(base) if raw.is_relative() => base.join(raw),
                _ => raw,
            };
            Ok(CircuitSource::Qasm(path))
        }
        _ => Err(format!(
            "`circuit` must be `generate <name> <qubits>` or `qasm <path>`, got `{value}`"
        )),
    }
}

fn parse_num(key: &str, value: &str, line: usize) -> Result<u64, JobFileError> {
    value
        .parse()
        .map_err(|_| JobFileError::new(line, format!("`{key}` must be an integer, got `{value}`")))
}

fn parse_float(key: &str, value: &str, line: usize) -> Result<f64, JobFileError> {
    value
        .parse()
        .map_err(|_| JobFileError::new(line, format!("`{key}` must be a number, got `{value}`")))
}

fn parse_probability(key: &str, value: &str, line: usize) -> Result<f64, JobFileError> {
    let p = parse_float(key, value, line)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(JobFileError::new(
            line,
            format!("`{key}` must be a probability in [0, 1], got `{value}`"),
        ));
    }
    Ok(p)
}

fn parse_bool(key: &str, value: &str, line: usize) -> Result<bool, JobFileError> {
    match value {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(JobFileError::new(
            line,
            format!("`{key}` must be true or false, got `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIXED: &str = "\
# demo
[job ghz]
circuit = generate ghz 8
shots = 4000
seed = 11
noiseless = true
epsilon = 0.05

[job qftfile]
circuit = qasm sub/qft.qasm
backend = dense
opt = 2
depolarizing = 0.01
weighted = true
";

    #[test]
    fn parses_a_mixed_file() {
        let jobs = parse_str(MIXED, Some(Path::new("/base"))).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "ghz");
        assert_eq!(
            jobs[0].source,
            CircuitSource::Generator {
                kind: "ghz".into(),
                qubits: 8
            }
        );
        assert_eq!(jobs[0].shots, 4000);
        assert_eq!(jobs[0].seed, 11);
        assert!(jobs[0].noise.is_noiseless());
        assert_eq!(jobs[0].epsilon, Some(0.05));
        assert_eq!(jobs[0].check_interval, DEFAULT_CHECK_INTERVAL);

        assert_eq!(jobs[1].backend, BackendKind::Statevector);
        assert_eq!(jobs[1].opt, OptLevel::O2);
        assert_eq!(
            jobs[1].source,
            CircuitSource::Qasm(PathBuf::from("/base/sub/qft.qasm"))
        );
        // Noise overrides start from the paper defaults.
        assert!((jobs[1].noise.depolarizing_prob() - 0.01).abs() < 1e-12);
        assert!(
            (jobs[1].noise.amplitude_damping_prob()
                - NoiseModel::paper_defaults().amplitude_damping_prob())
            .abs()
                < 1e-12
        );
        // Default seed is derived from the job index.
        assert_eq!(jobs[1].seed, 2022);
        assert_eq!(jobs[1].epsilon, None);
        assert!(jobs[1].weighted);
        assert!(!jobs[0].weighted);
    }

    #[test]
    fn timeout_ms_is_parsed_and_validated() {
        let text = "\
[job bounded]
circuit = generate ghz 3
timeout_ms = 1500
[job unbounded]
circuit = generate ghz 3
";
        let jobs = parse_str(text, None).unwrap();
        assert_eq!(jobs[0].timeout_ms, Some(1500));
        assert_eq!(jobs[1].timeout_ms, None);

        let err = parse_str("[job a]\ncircuit = generate ghz 3\ntimeout_ms = 0", None).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("positive"), "{}", err.message);
    }

    #[test]
    fn noise_overrides_do_not_leak_between_stanzas() {
        let text = "\
[job a]
circuit = generate ghz 3
noiseless = true
[job b]
circuit = generate ghz 3
";
        let jobs = parse_str(text, None).unwrap();
        assert!(jobs[0].noise.is_noiseless());
        assert!(!jobs[1].noise.is_noiseless());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("shots = 10", 1, "before the first"),
            ("[job a]\nwhat = 1", 2, "unknown key"),
            ("[job a]\ncircuit = generate nope 4", 2, "unknown generator"),
            (
                "[job a]\ncircuit = generate ghz 4\n[job a]\ncircuit = generate ghz 4",
                3,
                "duplicate",
            ),
            ("[job a]\nshots = 5", 1, "missing the `circuit` key"),
            (
                "[job a]\ncircuit = generate ghz 4\nepsilon = 1.5",
                3,
                "epsilon",
            ),
            (
                "[job a]\ncircuit = generate ghz 4\ncheck = 0",
                3,
                "positive",
            ),
            (
                "[job a]\ncircuit = generate ghz 4\ndepolarizing = 2.0",
                3,
                "[0, 1]",
            ),
            (
                "[job a]\ncircuit = generate ghz 4\nweighted = maybe",
                3,
                "must be true or false",
            ),
            (
                "[job a]\ncircuit = generate ghz 4\nweighted = true\nepsilon = 0.05",
                1,
                "cannot combine `weighted`",
            ),
            ("[job ]\ncircuit = generate ghz 4", 1, "empty"),
            ("[nope a]\ncircuit = generate ghz 4", 1, "malformed"),
            ("[jobfoo]\ncircuit = generate ghz 4", 1, "malformed"),
            ("", 0, "no [job"),
        ];
        for (text, line, needle) in cases {
            let err = parse_str(text, None).unwrap_err();
            assert_eq!(err.line, *line, "{text:?}: {err}");
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn load_circuit_builds_generators() {
        let jobs = parse_str("[job g]\ncircuit = generate qft 5", None).unwrap();
        let circuit = jobs[0].load_circuit().unwrap();
        assert_eq!(circuit.num_qubits(), 5);
    }

    #[test]
    fn generators_with_higher_minimums_parse_without_panicking() {
        // Regression: name validation used to probe every generator at 2
        // qubits, which tripped qaoa's `n >= 3` precondition assert.
        let jobs = parse_str("[job q]\ncircuit = generate qaoa 6", None).unwrap();
        assert_eq!(jobs[0].load_circuit().unwrap().num_qubits(), 6);
    }

    #[test]
    fn too_few_qubits_is_a_parse_error_not_a_panic() {
        for (text, needle) in [
            ("[job g]\ncircuit = generate grover 1", "at least 2"),
            ("[job q]\ncircuit = generate qaoa 2", "at least 3"),
            ("[job b]\ncircuit = generate bv 1", "at least 2"),
        ] {
            let err = parse_str(text, None).unwrap_err();
            assert_eq!(err.line, 2);
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn load_circuit_reports_bad_qubit_counts_instead_of_panicking() {
        // A spec constructed programmatically can bypass parse-time checks;
        // load_circuit must still fail gracefully so the scheduler reports
        // JobStatus::Failed instead of aborting the whole batch.
        let spec = JobSpec::new(
            "tiny",
            CircuitSource::Generator {
                kind: "grover".to_string(),
                qubits: 1,
            },
            0,
        );
        let err = spec.load_circuit().unwrap_err();
        assert!(err.contains("at least 2"), "{err}");
    }

    #[test]
    fn load_circuit_reports_missing_qasm_files() {
        let jobs = parse_str("[job q]\ncircuit = qasm /does/not/exist.qasm", None).unwrap();
        assert!(jobs[0].load_circuit().unwrap_err().contains("cannot read"));
    }
}
