//! # qsdd-batch — multi-job batch execution for the stochastic simulator
//!
//! The stochastic method of Grurl, Kueng, Fuß and Wille (DATE 2021) shines
//! when *fleets* of independent noisy runs are thrown at the hardware. This
//! crate turns the single-circuit simulator into a batch system:
//!
//! 1. **[`jobfile`]** — a plain-text job-file format: one stanza per job
//!    naming a circuit source (QASM path or generator spec), back-end, noise
//!    model, optimization level, shot cap, seed and optional early-stop
//!    target.
//! 2. **[`scheduler`]** — a shared worker pool that interleaves shots from
//!    different jobs through a global chunk queue (so one giant job cannot
//!    starve small ones) and optionally stops a job early once the dominant
//!    outcome's Wilson confidence interval is tighter than the requested
//!    epsilon. Results are bit-identical for every thread count. Jobs marked
//!    `weighted = true` instead run whole through the weighted
//!    trajectory-enumeration driver of `qsdd-core` and report the covered
//!    probability mass alongside the enumerated trajectory count.
//! 3. **[`report`]** — a [`BatchReport`] with per-job outcome histograms,
//!    error rates, executed shot counts, wall-clock and decision-diagram
//!    node statistics, serialised by hand-rolled [`json`] and CSV writers
//!    (this workspace is offline and carries no serde).
//!
//! Execution goes through the re-entrant
//! [`ShotEngine`](qsdd_core::ShotEngine) API of `qsdd-core` — the same
//! primitive `StochasticSimulator` runs on — so a batch of one job produces
//! exactly the simulator's histogram.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_batch::{jobfile, run_batch, BatchOptions};
//!
//! let jobs = jobfile::parse_str(
//!     "
//!     [job ghz-demo]
//!     circuit = generate ghz 6
//!     shots = 512
//!     seed = 7
//!     noiseless = true
//!     epsilon = 0.08
//!     ",
//!     None,
//! )?;
//! let report = run_batch(&jobs, &BatchOptions::with_threads(2));
//! assert!(report.all_completed());
//! let job = &report.jobs[0];
//! // The two GHZ peaks carry all the probability mass ...
//! assert_eq!(job.counts.values().sum::<u64>(), job.shots_executed);
//! // ... and the report round-trips through its own JSON writer.
//! let parsed = qsdd_batch::BatchReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(parsed.jobs[0].counts, job.counts);
//! # Ok::<(), qsdd_batch::JobFileError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod jobfile;
pub mod report;
pub mod scheduler;

/// The hand-rolled JSON value type, writer and parser backing the report
/// serialisation, re-exported from the shared [`qsdd_json`] crate (the
/// module lived here before `qsdd-server` needed the same implementation).
pub use qsdd_json as json;

pub use jobfile::{CircuitSource, JobFileError, JobSpec};
pub use report::{BatchReport, JobReport, JobStatus};
pub use scheduler::{run_batch, wilson_half_width, BatchOptions};
