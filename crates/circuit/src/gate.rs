//! The gate set understood by the simulators.
//!
//! Every gate is either a (parameterised) single-qubit unitary — possibly
//! with controls attached at the [`crate::Operation`] level — or the
//! structural two-qubit SWAP. The gate knows its dense 2x2 matrix, which is
//! all the decision diagram and statevector back-ends need to apply it.

use qsdd_dd::Matrix2;
use std::fmt;

/// A single-qubit gate (or the structural SWAP gate).
///
/// Controls are not part of the gate itself; they are attached by
/// [`crate::Operation::Gate`]. This mirrors how the decision diagram package
/// builds controlled operators from a base matrix plus a control set.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::Gate;
///
/// let h = Gate::H;
/// assert_eq!(h.name(), "h");
/// assert!(h.matrix().unwrap().is_unitary(1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate (pi/8 gate).
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase gate `diag(1, e^{i lambda})` (OpenQASM `u1` / `p`).
    Phase(f64),
    /// The OpenQASM `u2(phi, lambda)` gate.
    U2(f64, f64),
    /// The general single-qubit gate `u3(theta, phi, lambda)`.
    U3(f64, f64, f64),
    /// The two-qubit SWAP gate (structural; has no 2x2 matrix).
    Swap,
}

impl Gate {
    /// The dense 2x2 matrix of the gate, or `None` for [`Gate::Swap`].
    pub fn matrix(&self) -> Option<Matrix2> {
        use std::f64::consts::FRAC_PI_2;
        let m = match *self {
            Gate::I => Matrix2::identity(),
            Gate::H => Matrix2::hadamard(),
            Gate::X => Matrix2::pauli_x(),
            Gate::Y => Matrix2::pauli_y(),
            Gate::Z => Matrix2::pauli_z(),
            Gate::S => Matrix2::s_gate(),
            Gate::Sdg => Matrix2::sdg_gate(),
            Gate::T => Matrix2::t_gate(),
            Gate::Tdg => Matrix2::tdg_gate(),
            Gate::Sx => Matrix2::sx_gate(),
            Gate::Rx(theta) => Matrix2::rx(theta),
            Gate::Ry(theta) => Matrix2::ry(theta),
            Gate::Rz(theta) => Matrix2::rz(theta),
            Gate::Phase(lambda) => Matrix2::phase(lambda),
            Gate::U2(phi, lambda) => Matrix2::u3(FRAC_PI_2, phi, lambda),
            Gate::U3(theta, phi, lambda) => Matrix2::u3(theta, phi, lambda),
            Gate::Swap => return None,
        };
        Some(m)
    }

    /// Lower-case OpenQASM-style name of the gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U2(..) => "u2",
            Gate::U3(..) => "u3",
            Gate::Swap => "swap",
        }
    }

    /// Number of qubits the bare gate acts on (1, or 2 for SWAP).
    pub fn arity(&self) -> usize {
        match self {
            Gate::Swap => 2,
            _ => 1,
        }
    }

    /// The adjoint (inverse) of the gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::U3(
                -std::f64::consts::FRAC_PI_2,
                -std::f64::consts::FRAC_PI_2,
                std::f64::consts::FRAC_PI_2,
            ),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(l) => Gate::Phase(-l),
            Gate::U2(phi, lambda) => Gate::U3(-std::f64::consts::FRAC_PI_2, -lambda, -phi),
            Gate::U3(theta, phi, lambda) => Gate::U3(-theta, -lambda, -phi),
            g => g, // I, H, X, Y, Z, Swap are self-inverse
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => {
                write!(f, "{}({:.4})", self.name(), t)
            }
            Gate::U2(a, b) => write!(f, "u2({:.4},{:.4})", a, b),
            Gate::U3(a, b, c) => write!(f, "u3({:.4},{:.4},{:.4})", a, b, c),
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixed_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::Ry(1.2),
            Gate::Rz(-0.8),
            Gate::Phase(0.5),
            Gate::U2(0.1, 0.7),
            Gate::U3(0.4, 1.0, -0.3),
        ];
        for g in gates {
            let m = g.matrix().expect("non-swap gate must have a matrix");
            assert!(m.is_unitary(1e-12), "{g} is not unitary");
        }
    }

    #[test]
    fn swap_has_no_single_qubit_matrix() {
        assert!(Gate::Swap.matrix().is_none());
        assert_eq!(Gate::Swap.arity(), 2);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Rz(1.9),
            Gate::Phase(-0.2),
            Gate::U2(0.3, 0.9),
            Gate::U3(0.4, 1.0, -0.3),
        ];
        for g in gates {
            let m = g.matrix().unwrap();
            let mi = g.inverse().matrix().unwrap();
            let prod = m.matmul(&mi);
            // The product must be the identity up to a global phase.
            let phase = prod.entry(0, 0);
            assert!(
                prod.approx_eq(&Matrix2::identity().scale(phase), 1e-10),
                "{g} times its inverse is not the identity (up to phase)"
            );
            assert!((phase.abs() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Gate::U3(0.0, 0.0, 0.0).name(), "u3");
        assert_eq!(Gate::Phase(1.0).name(), "p");
        assert_eq!(Gate::Sdg.name(), "sdg");
    }

    #[test]
    fn display_includes_parameters() {
        let s = Gate::Rz(0.5).to_string();
        assert!(s.starts_with("rz(0.5"));
        assert_eq!(Gate::X.to_string(), "x");
    }
}
