//! Hamiltonian-simulation and variational benchmarks: transverse-field Ising
//! Trotterisation, VQE-style ansatz circuits, a basis-trotter stand-in, and
//! the Shor-code based `seca` benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Circuit;

/// Trotterised time evolution of a 1-D transverse-field Ising model over `n`
/// qubits with `steps` Trotter steps (QASMBench `ising` stand-in).
///
/// Each step applies `ZZ` interactions between neighbouring qubits
/// (decomposed as `CX · RZ · CX`) followed by `RX` rotations for the
/// transverse field.
///
/// # Panics
///
/// Panics if `n == 0` or `steps == 0`.
pub fn ising(n: usize, steps: usize) -> Circuit {
    assert!(n > 0 && steps > 0, "ising model needs qubits and steps");
    let dt = 0.1;
    let coupling = 1.0;
    let field = 0.7;
    let mut c = Circuit::with_name(n, &format!("ising_{n}"));
    // Start from a superposition to exercise entangling dynamics.
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..steps {
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
            c.rz(2.0 * coupling * dt, q + 1);
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.rx(2.0 * field * dt, q);
        }
    }
    c.measure_all();
    c
}

/// A hardware-efficient VQE ansatz of `layers` entangling layers over `n`
/// qubits (QASMBench `vqe_uccsd` stand-in).
///
/// Each layer consists of parameterised `RY`/`RZ` rotations on every qubit
/// followed by a linear CNOT ladder. The rotation angles are drawn
/// deterministically from `seed`, so the same circuit is generated on every
/// call.
///
/// # Panics
///
/// Panics if `n == 0` or `layers == 0`.
pub fn vqe_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n > 0 && layers > 0, "ansatz needs qubits and layers");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, &format!("vqe_uccsd_{n}"));
    for _ in 0..layers {
        for q in 0..n {
            c.ry(
                rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                q,
            );
            c.rz(
                rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                q,
            );
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.ry(
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            q,
        );
    }
    c.measure_all();
    c
}

/// A dense Trotterised basis-rotation circuit over `n` qubits with `reps`
/// repetitions (QASMBench `basis_trotter` stand-in).
///
/// The circuit interleaves Givens-rotation style blocks (`CX · RY · CX`)
/// between every qubit pair with single-qubit phase rotations, producing the
/// high gate density per qubit that characterises the original benchmark.
///
/// # Panics
///
/// Panics if `n < 2` or `reps == 0`.
pub fn basis_trotter(n: usize, reps: usize) -> Circuit {
    assert!(
        n >= 2 && reps > 0,
        "basis trotter needs two qubits and a repetition"
    );
    let mut c = Circuit::with_name(n, &format!("basis_trotter_{n}"));
    for q in 0..n {
        c.h(q);
    }
    let mut angle = 0.05;
    for _ in 0..reps {
        for a in 0..n {
            for b in (a + 1)..n {
                // Givens rotation between qubits a and b.
                c.cx(a, b);
                c.ry(angle, b);
                c.cx(a, b);
                c.rz(angle * 0.5, a);
                c.rz(-angle * 0.5, b);
                angle += 0.013;
            }
        }
        for q in 0..n {
            c.t(q);
            c.s(q);
        }
    }
    c.measure_all();
    c
}

/// The `seca` benchmark stand-in: Shor's nine-qubit error-correction code
/// encoding of one logical qubit plus a two-qubit entangled ancilla pair,
/// for a total of 11 qubits.
///
/// The circuit encodes qubit 0 into the nine-qubit Shor code (phase-flip
/// repetition over blocks of bit-flip repetitions), entangles the two
/// ancillas with the code blocks, and measures the ancillas.
pub fn seca() -> Circuit {
    let n = 11;
    let mut c = Circuit::with_name(n, "seca_11");
    // Prepare an arbitrary logical state on qubit 0.
    c.h(0);
    c.t(0);
    // Phase-flip repetition across block leaders 0, 3, 6.
    c.cx(0, 3);
    c.cx(0, 6);
    c.h(0);
    c.h(3);
    c.h(6);
    // Bit-flip repetition inside each block.
    for leader in [0usize, 3, 6] {
        c.cx(leader, leader + 1);
        c.cx(leader, leader + 2);
    }
    c.barrier();
    // Syndrome-style ancilla interactions (qubits 9 and 10).
    for leader in [0usize, 3, 6] {
        c.cx(leader, 9);
        c.cx(leader + 1, 10);
    }
    c.h(9);
    c.h(10);
    c.measure(9, 9);
    c.measure(10, 10);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_gate_count_scales_with_steps() {
        let one = ising(6, 1).stats().gate_count;
        let five = ising(6, 5).stats().gate_count;
        assert!(five > 4 * one / 2);
        assert_eq!(ising(10, 10).num_qubits(), 10);
    }

    #[test]
    fn vqe_ansatz_is_deterministic() {
        let a = vqe_ansatz(6, 6, 11);
        let b = vqe_ansatz(6, 6, 11);
        assert_eq!(a, b);
        assert_eq!(a.num_qubits(), 6);
    }

    #[test]
    fn basis_trotter_is_gate_dense() {
        let c = basis_trotter(4, 4);
        // Far more gates than qubits: the defining property of this benchmark.
        assert!(c.stats().gate_count > 20 * c.num_qubits());
    }

    #[test]
    fn seca_uses_eleven_qubits() {
        let c = seca();
        assert_eq!(c.num_qubits(), 11);
        assert_eq!(c.stats().measure_count, 2);
    }
}
