//! Reversible arithmetic benchmarks: the Cuccaro ripple-carry adder
//! (QASMBench `bigadder` stand-in) and a shift-and-add multiplier
//! (QASMBench `multiplier` stand-in).

use crate::Circuit;

/// The Cuccaro ripple-carry adder over two `bits`-bit registers.
///
/// Register layout (total `2 * bits + 2` qubits):
///
/// * qubit 0 — the incoming carry (initialised to `|0>`),
/// * qubits `1 ..= bits` — register `b` (receives `a + b`),
/// * qubits `bits + 1 ..= 2 * bits` — register `a`,
/// * qubit `2 * bits + 1` — the outgoing carry.
///
/// For `bits = 8` this is the 18-qubit `bigadder` configuration of
/// Table Ic.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn cuccaro_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit per operand");
    let n = 2 * bits + 2;
    let mut c = Circuit::with_name(n, &format!("bigadder_{n}"));
    let carry_in = 0usize;
    let b = |i: usize| 1 + i;
    let a = |i: usize| bits + 1 + i;
    let carry_out = 2 * bits + 1;

    // MAJ cascade.
    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    // Copy the final carry.
    c.cx(a(bits - 1), carry_out);
    // UMA cascade (un-majority and add).
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    c.measure_all();
    c
}

fn maj(c: &mut Circuit, x: usize, y: usize, z: usize) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
}

fn uma(c: &mut Circuit, x: usize, y: usize, z: usize) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

/// A shift-and-add multiplier circuit over an `a_bits`-bit and a
/// `b_bits`-bit operand.
///
/// The circuit reproduces the gate structure of the QASMBench `multiplier`
/// benchmark (per-partial-product Toffolis plus carry-propagation ladders);
/// it is a workload stand-in for benchmarking rather than a verified
/// arithmetic unit.
///
/// Register layout (total `a_bits + b_bits + (a_bits + b_bits) + 1` qubits):
///
/// * qubits `0 .. a_bits` — operand `a`,
/// * qubits `a_bits .. a_bits + b_bits` — operand `b`,
/// * the following `a_bits + b_bits` qubits — the product accumulator,
/// * the last qubit — a carry ancilla.
///
/// Each partial product `a_i * b_j` is accumulated with a Toffoli into the
/// product register followed by a carry-propagation ladder, mirroring the
/// structure of the QASMBench `multiplier` benchmark. For
/// `a_bits = 3, b_bits = 4` the circuit uses 15 qubits.
///
/// # Panics
///
/// Panics if either operand width is zero.
pub fn multiplier(a_bits: usize, b_bits: usize) -> Circuit {
    assert!(
        a_bits > 0 && b_bits > 0,
        "operands must have at least one bit"
    );
    let prod_bits = a_bits + b_bits;
    let n = a_bits + b_bits + prod_bits + 1;
    let mut c = Circuit::with_name(n, &format!("multiplier_{n}"));
    let a = |i: usize| i;
    let b = |j: usize| a_bits + j;
    let p = |k: usize| a_bits + b_bits + k;
    let carry = n - 1;

    // Put the operands in superposition so the benchmark exercises
    // non-trivial entanglement (the QASMBench circuit multiplies fixed
    // classical inputs; a superposition input is strictly harder).
    for i in 0..a_bits {
        c.h(a(i));
    }
    for j in 0..b_bits {
        c.h(b(j));
    }
    c.barrier();

    for i in 0..a_bits {
        for j in 0..b_bits {
            let k = i + j;
            // Add the partial product a_i * b_j into product bit k with a
            // simple carry ladder into the higher bits.
            c.ccx(a(i), b(j), carry);
            // Carry-propagation ladder into the higher product bits.
            for t in k..prod_bits.saturating_sub(1) {
                c.ccx(carry, p(t), p(t + 1));
            }
            c.cx(carry, p(k));
            // Uncompute the partial-product ancilla.
            c.ccx(a(i), b(j), carry);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_width_matches_formula() {
        assert_eq!(cuccaro_adder(8).num_qubits(), 18);
        assert_eq!(cuccaro_adder(1).num_qubits(), 4);
    }

    #[test]
    fn adder_gate_count_is_linear_in_bits() {
        let small = cuccaro_adder(2).stats().gate_count;
        let big = cuccaro_adder(4).stats().gate_count;
        assert!(big > small);
        assert!(big < 4 * small);
    }

    #[test]
    fn multiplier_width_matches_formula() {
        assert_eq!(multiplier(3, 4).num_qubits(), 15);
        assert_eq!(multiplier(2, 2).num_qubits(), 9);
    }

    #[test]
    fn multiplier_contains_toffolis() {
        let c = multiplier(2, 2);
        let toffolis = c
            .iter()
            .filter(
                |op| matches!(op, crate::Operation::Gate { controls, .. } if controls.len() == 2),
            )
            .count();
        assert!(
            toffolis >= 8,
            "expected at least two Toffolis per partial product"
        );
    }
}
