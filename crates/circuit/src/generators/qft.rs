//! Quantum Fourier Transform and phase-estimation circuits (Table Ib).

use std::f64::consts::PI;

use crate::Circuit;

/// The Quantum Fourier Transform over `n` qubits, including the final qubit
/// reversal swaps (Table Ib of the paper).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::qft;
///
/// let c = qft(4);
/// assert_eq!(c.num_qubits(), 4);
/// // n Hadamards + n(n-1)/2 controlled phases + floor(n/2) swaps.
/// assert_eq!(c.stats().gate_count, 4 + 6 + 2);
/// ```
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::with_name(n, &format!("qft_{n}"));
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            // Controlled phase of pi / 2^(j-i), the standard QFT ladder.
            let angle = PI / (1u64 << (j - i)) as f64;
            c.cp(angle, j, i);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// Quantum phase estimation of the phase gate `p(2*pi*phase)` using
/// `counting` counting qubits plus one eigenstate qubit.
///
/// The eigenstate qubit (index `counting`) is prepared in `|1>`, which is an
/// eigenvector of the phase gate, and the counting register ends up holding
/// an approximation of `phase` in binary.
///
/// # Panics
///
/// Panics if `counting == 0`.
pub fn quantum_phase_estimation(counting: usize, phase: f64) -> Circuit {
    assert!(counting > 0, "need at least one counting qubit");
    let n = counting + 1;
    let eigenstate = counting;
    let mut c = Circuit::with_name(n, &format!("qpe_{n}"));
    c.x(eigenstate);
    for q in 0..counting {
        c.h(q);
    }
    // Controlled powers of the unitary: qubit q controls U^(2^(counting-1-q)).
    for q in 0..counting {
        let power = 1u64 << (counting - 1 - q);
        let angle = 2.0 * PI * phase * power as f64;
        c.cp(angle, q, eigenstate);
    }
    // Inverse QFT on the counting register.
    let inverse_qft = qft(counting).inverse();
    c.append(&inverse_qft);
    for q in 0..counting {
        c.measure(q, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_gate_count_is_quadratic() {
        for n in [2usize, 5, 9] {
            let c = qft(n);
            let expected = n + n * (n - 1) / 2 + n / 2;
            assert_eq!(c.stats().gate_count, expected, "n = {n}");
        }
    }

    #[test]
    fn qft_controlled_phase_angles_halve() {
        let c = qft(3);
        let mut angles = Vec::new();
        for op in c.iter() {
            if let crate::Operation::Gate {
                gate: crate::Gate::Phase(a),
                controls,
                ..
            } = op
            {
                if !controls.is_empty() {
                    angles.push(*a);
                }
            }
        }
        assert_eq!(angles.len(), 3);
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] - PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn qpe_has_expected_width() {
        let c = quantum_phase_estimation(4, 0.125);
        assert_eq!(c.num_qubits(), 5);
        assert!(c.stats().gate_count > 10);
    }
}
