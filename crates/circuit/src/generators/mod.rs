//! Programmatic generators for the benchmark circuits used in the paper's
//! evaluation.
//!
//! Table Ia uses the *entanglement* (GHZ) circuits, Table Ib the *Quantum
//! Fourier Transform*, and Table Ic circuits from the QASMBench suite. The
//! QASMBench files themselves are OpenQASM sources; this module provides
//! generators that produce circuits with the same structure (gate families,
//! entanglement pattern and qubit counts) so that the benchmark harness is
//! self-contained. Real QASMBench files can still be loaded through
//! [`crate::qasm::parse_source`].

mod arithmetic;
mod basic;
mod chemistry;
mod extended;
mod grover;
mod qft;

pub use arithmetic::{cuccaro_adder, multiplier};
pub use basic::{bernstein_vazirani, ghz, random_circuit, w_state};
pub use chemistry::{basis_trotter, ising, seca, vqe_ansatz};
pub use extended::{deutsch_jozsa, draper_adder, qaoa_maxcut_ring, ring_graph_state};
pub use grover::{counterfeit_coin, grover, sat_oracle_circuit};
pub use qft::{qft, quantum_phase_estimation};

use crate::Circuit;

/// The smallest qubit count a named generator supports, or `None` for
/// unknown names.
///
/// Front-ends use this to validate user input *before* calling the
/// generator functions, whose own precondition `assert!`s would otherwise
/// turn a typo in a job file into a process abort.
///
/// ```
/// use qsdd_circuit::generators::min_qubits;
///
/// assert_eq!(min_qubits("ghz"), Some(1));
/// assert_eq!(min_qubits("qaoa"), Some(3));
/// assert_eq!(min_qubits("nope"), None);
/// ```
pub fn min_qubits(name: &str) -> Option<usize> {
    match name {
        "ghz" | "entanglement" | "qft" | "wstate" => Some(1),
        "grover" | "bv" => Some(2),
        "qaoa" => Some(3),
        _ => None,
    }
}

/// Builds a generator circuit from its command-line / job-file name.
///
/// This is the single lookup shared by `qsdd_cli generate` and the
/// `qsdd-batch` job-file parser, so both front-ends accept exactly the same
/// spellings. Returns `None` for unknown names **and** for qubit counts
/// below the generator's minimum ([`min_qubits`]) — it never panics.
///
/// | Name | Circuit |
/// |------|---------|
/// | `ghz`, `entanglement` | [`ghz`] (the paper's Table Ia workload) |
/// | `qft` | [`qft`] (Table Ib) |
/// | `grover` | [`grover`] with one marked item |
/// | `bv` | [`bernstein_vazirani`] with the alternating secret |
/// | `wstate` | [`w_state`] |
/// | `qaoa` | [`qaoa_maxcut_ring`] with two fixed parameter layers |
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::by_name;
///
/// let circuit = by_name("ghz", 8).expect("known generator");
/// assert_eq!(circuit.num_qubits(), 8);
/// assert!(by_name("nope", 8).is_none());
/// assert!(by_name("grover", 1).is_none()); // below the minimum, no panic
/// ```
pub fn by_name(name: &str, qubits: usize) -> Option<Circuit> {
    if qubits < min_qubits(name)? {
        return None;
    }
    let circuit = match name {
        "ghz" | "entanglement" => ghz(qubits),
        "qft" => qft(qubits),
        "grover" => grover(qubits, 1, None),
        "bv" => bernstein_vazirani(qubits, 0x5555_5555_5555_5555),
        "wstate" => w_state(qubits),
        "qaoa" => qaoa_maxcut_ring(qubits, &[(0.4, 0.9), (0.7, 0.3)]),
        _ => return None,
    };
    Some(circuit)
}

/// A named benchmark entry of the QASMBench-style suite (Table Ic).
#[derive(Clone, Debug)]
pub struct BenchmarkEntry {
    /// Benchmark name as used in the paper's table.
    pub name: &'static str,
    /// Number of qubits.
    pub num_qubits: usize,
    /// The generated circuit.
    pub circuit: Circuit,
}

/// Builds the QASMBench-style benchmark set listed in Table Ic of the paper.
///
/// Each entry is a structural stand-in for the corresponding QASMBench
/// circuit with the same qubit count (see `DESIGN.md` for the substitution
/// rationale).
pub fn qasmbench_suite() -> Vec<BenchmarkEntry> {
    let entries = vec![
        ("basis_trotter", basis_trotter(4, 4)),
        ("vqe_uccsd_6", vqe_ansatz(6, 6, 11)),
        ("vqe_uccsd_8", vqe_ansatz(8, 8, 13)),
        ("ising_10", ising(10, 10)),
        ("seca_11", seca()),
        ("sat_11", sat_oracle_circuit(11)),
        ("multiplier_15", multiplier(3, 4)),
        ("bigadder_18", cuccaro_adder(8)),
        ("cc_18", counterfeit_coin(18)),
        ("bv_19", bernstein_vazirani(19, 0b1_0101_0101_0101_0101)),
    ];
    entries
        .into_iter()
        .map(|(name, circuit)| BenchmarkEntry {
            name,
            num_qubits: circuit.num_qubits(),
            circuit,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_expected_sizes() {
        let suite = qasmbench_suite();
        assert_eq!(suite.len(), 10);
        let by_name: std::collections::HashMap<_, _> =
            suite.iter().map(|e| (e.name, e.num_qubits)).collect();
        assert_eq!(by_name["ising_10"], 10);
        assert_eq!(by_name["seca_11"], 11);
        assert_eq!(by_name["sat_11"], 11);
        assert_eq!(by_name["multiplier_15"], 15);
        assert_eq!(by_name["bigadder_18"], 18);
        assert_eq!(by_name["cc_18"], 18);
        assert_eq!(by_name["bv_19"], 19);
    }

    #[test]
    fn every_suite_circuit_is_nonempty() {
        for entry in qasmbench_suite() {
            assert!(!entry.circuit.is_empty(), "{} is empty", entry.name);
            assert!(entry.circuit.stats().gate_count > 0);
        }
    }
}
