//! Elementary benchmark circuits: GHZ/entanglement, W state,
//! Bernstein–Vazirani and random circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Gate};

/// The *entanglement* circuit of the paper (Table Ia): a GHZ-state
/// preparation over `n` qubits — one Hadamard followed by a CNOT chain from
/// qubit 0 to every other qubit.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::ghz;
///
/// let c = ghz(5);
/// assert_eq!(c.num_qubits(), 5);
/// assert_eq!(c.stats().gate_count, 5); // 1 H + 4 CX
/// ```
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::with_name(n, &format!("entanglement_{n}"));
    c.h(0);
    for target in 1..n {
        c.cx(0, target);
    }
    c
}

/// A W-state preparation circuit over `n` qubits using the standard cascade
/// of controlled Y-rotations and CNOTs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> Circuit {
    let mut c = Circuit::with_name(n, &format!("wstate_{n}"));
    // Start with the excitation on qubit 0 and distribute it.
    c.x(0);
    for k in 1..n {
        // Rotate a fraction of the amplitude from qubit k-1 onto qubit k.
        let remaining = (n - k) as f64;
        let theta = 2.0 * (1.0 / (remaining + 1.0)).sqrt().acos();
        c.controlled_gate(Gate::Ry(theta), &[k - 1], k);
        c.cx(k, k - 1);
    }
    c
}

/// The Bernstein–Vazirani circuit over `n` qubits (`n - 1` data qubits plus
/// one ancilla) for the given hidden bit string.
///
/// Bit `i` of `hidden` (counting from the least significant bit) corresponds
/// to data qubit `i`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bernstein_vazirani(n: usize, hidden: u64) -> Circuit {
    assert!(
        n >= 2,
        "Bernstein-Vazirani needs at least one data qubit and an ancilla"
    );
    let data = n - 1;
    let ancilla = n - 1;
    let mut c = Circuit::with_name(n, &format!("bv_{n}"));
    c.x(ancilla);
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    for q in 0..data {
        if (hidden >> q) & 1 == 1 {
            c.cx(q, ancilla);
        }
    }
    c.barrier();
    for q in 0..data {
        c.h(q);
    }
    for q in 0..data {
        c.measure(q, q);
    }
    c
}

/// A pseudo-random circuit: `depth` layers of uniformly chosen single-qubit
/// gates followed by a layer of CNOTs between randomly paired qubits.
///
/// The construction is deterministic in `seed`, which keeps property-based
/// tests and benchmarks reproducible.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_circuit(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, &format!("random_{n}x{depth}"));
    for _ in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..6) {
                0 => c.h(q),
                1 => c.t(q),
                2 => c.x(q),
                3 => c.s(q),
                4 => c.rx(rng.gen_range(0.0..std::f64::consts::TAU), q),
                _ => c.rz(rng.gen_range(0.0..std::f64::consts::TAU), q),
            };
        }
        if n >= 2 {
            let mut qubits: Vec<usize> = (0..n).collect();
            for i in (1..qubits.len()).rev() {
                let j = rng.gen_range(0..=i);
                qubits.swap(i, j);
            }
            for pair in qubits.chunks_exact(2) {
                c.cx(pair[0], pair[1]);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_structure() {
        let c = ghz(8);
        assert_eq!(c.num_qubits(), 8);
        assert_eq!(c.stats().gate_count, 8);
        assert_eq!(c.stats().multi_qubit_gate_count, 7);
    }

    #[test]
    fn w_state_gate_count_grows_linearly() {
        let c = w_state(6);
        assert_eq!(c.stats().gate_count, 1 + 2 * 5);
    }

    #[test]
    fn bernstein_vazirani_uses_one_cx_per_hidden_bit() {
        let c = bernstein_vazirani(6, 0b10110);
        let cx_count = c
            .iter()
            .filter(|op| {
                matches!(op, crate::Operation::Gate { gate: Gate::X, controls, .. } if !controls.is_empty())
            })
            .count();
        // 0b10110 has three set bits within the 5 data-qubit range.
        assert_eq!(cx_count, 3);
    }

    #[test]
    fn random_circuit_is_deterministic_in_seed() {
        let a = random_circuit(5, 4, 99);
        let b = random_circuit(5, 4, 99);
        let c = random_circuit(5, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
