//! Additional algorithm generators beyond the paper's benchmark set.
//!
//! These circuits broaden the workload coverage of the library (and of the
//! ablation benchmarks): oracle algorithms with constant/balanced structure
//! (Deutsch–Jozsa), variational optimisation layers (QAOA for MaxCut on a
//! ring), graph states, and a Draper-style QFT adder.

use std::f64::consts::PI;

use crate::generators::qft;
use crate::Circuit;

/// The Deutsch–Jozsa algorithm over `n` qubits (`n - 1` data qubits plus one
/// ancilla).
///
/// When `balanced` is `false` the oracle is the constant-zero function and
/// the algorithm deterministically measures the all-zero string; when `true`
/// the oracle is the parity function (a balanced function) and at least one
/// data qubit measures `|1>`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn deutsch_jozsa(n: usize, balanced: bool) -> Circuit {
    assert!(n >= 2, "Deutsch-Jozsa needs a data qubit and an ancilla");
    let data = n - 1;
    let ancilla = n - 1;
    let mut c = Circuit::with_name(n, &format!("dj_{n}"));
    c.x(ancilla);
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    if balanced {
        // Parity oracle: flips the ancilla once per set data bit.
        for q in 0..data {
            c.cx(q, ancilla);
        }
    }
    c.barrier();
    for q in 0..data {
        c.h(q);
        c.measure(q, q);
    }
    c
}

/// A `p`-layer QAOA circuit for MaxCut on an `n`-vertex ring graph with the
/// given mixing/cost angles (one `(gamma, beta)` pair per layer).
///
/// # Panics
///
/// Panics if `n < 3` or `angles` is empty.
pub fn qaoa_maxcut_ring(n: usize, angles: &[(f64, f64)]) -> Circuit {
    assert!(n >= 3, "a ring needs at least three vertices");
    assert!(!angles.is_empty(), "QAOA needs at least one layer");
    let mut c = Circuit::with_name(n, &format!("qaoa_ring_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for &(gamma, beta) in angles {
        // Cost layer: exp(-i gamma Z_u Z_v) on every ring edge.
        for u in 0..n {
            let v = (u + 1) % n;
            c.cx(u, v);
            c.rz(2.0 * gamma, v);
            c.cx(u, v);
        }
        // Mixer layer.
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c.measure_all();
    c
}

/// A graph state over `n` qubits for the ring graph: Hadamards on every
/// qubit followed by controlled-Z along every edge.
///
/// Graph states are stabiliser states with compact decision diagrams, which
/// makes them another good scaling workload for the DD back-end.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring_graph_state(n: usize) -> Circuit {
    assert!(n >= 3, "a ring needs at least three vertices");
    let mut c = Circuit::with_name(n, &format!("graph_ring_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for u in 0..n {
        c.cz(u, (u + 1) % n);
    }
    c
}

/// A Draper adder: adds the classical constant `addend` onto a `bits`-bit
/// register in the Fourier basis (QFT, phase rotations, inverse QFT).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn draper_adder(bits: usize, addend: u64) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let mut c = Circuit::with_name(bits, &format!("draper_{bits}"));
    c.append(&qft(bits));
    // Phase rotations implementing the addition of `addend` modulo 2^bits.
    for target in 0..bits {
        let mut angle = 0.0;
        for bit in 0..bits {
            if (addend >> bit) & 1 == 1 {
                // In the Fourier basis, qubit `target` accumulates the phase
                // pi * 2^(bit - target) per set addend bit; positive weights
                // are full turns and can be dropped.
                let weight = bit as i64 - target as i64;
                if weight <= 0 {
                    angle += PI * 2f64.powi(weight as i32);
                }
            }
        }
        if angle != 0.0 {
            c.p(angle, target);
        }
    }
    let inverse_qft = qft(bits).inverse();
    c.append(&inverse_qft);
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;

    #[test]
    fn deutsch_jozsa_constant_oracle_has_no_cx() {
        let c = deutsch_jozsa(6, false);
        let cx = c
            .iter()
            .filter(|op| matches!(op, Operation::Gate { controls, .. } if !controls.is_empty()))
            .count();
        assert_eq!(cx, 0);
        assert_eq!(c.stats().measure_count, 5);
    }

    #[test]
    fn deutsch_jozsa_balanced_oracle_touches_every_data_qubit() {
        let c = deutsch_jozsa(6, true);
        let cx = c
            .iter()
            .filter(|op| matches!(op, Operation::Gate { controls, .. } if !controls.is_empty()))
            .count();
        assert_eq!(cx, 5);
    }

    #[test]
    fn qaoa_layer_count_scales_gate_count() {
        let one = qaoa_maxcut_ring(6, &[(0.3, 0.7)]).stats().gate_count;
        let three = qaoa_maxcut_ring(6, &[(0.3, 0.7); 3]).stats().gate_count;
        assert!(three > 2 * one);
    }

    #[test]
    fn ring_graph_state_has_n_cz_gates() {
        let c = ring_graph_state(8);
        assert_eq!(c.stats().gate_count, 16);
        assert_eq!(c.stats().multi_qubit_gate_count, 8);
    }

    #[test]
    fn draper_adder_width_and_structure() {
        let c = draper_adder(4, 5);
        assert_eq!(c.num_qubits(), 4);
        // QFT + inverse QFT plus at least one phase rotation.
        assert!(c.stats().gate_count > 2 * qft(4).stats().gate_count);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn qaoa_requires_layers() {
        let _ = qaoa_maxcut_ring(5, &[]);
    }
}
