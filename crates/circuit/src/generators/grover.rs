//! Oracle-based search benchmarks: Grover search, a SAT-style oracle
//! circuit, and the quantum counterfeit-coin protocol.

use std::f64::consts::PI;

use crate::Circuit;

/// Grover search over `data` qubits for the marked basis state `marked`,
/// running the optimal number of iterations (or `iterations` when given).
///
/// The oracle is a multi-controlled Z that flips the phase of the marked
/// state; the diffusion operator is the standard inversion about the mean.
///
/// # Panics
///
/// Panics if `data < 2` or `marked >= 2^data`.
pub fn grover(data: usize, marked: u64, iterations: Option<usize>) -> Circuit {
    assert!(data >= 2, "Grover search needs at least two data qubits");
    assert!(
        marked < (1u64 << data),
        "marked state does not fit into the data register"
    );
    let iters = iterations.unwrap_or_else(|| {
        let amplitude = 1.0 / ((1u64 << data) as f64).sqrt();
        ((PI / 4.0) / amplitude.asin()).floor().max(1.0) as usize
    });
    let mut c = Circuit::with_name(data, &format!("grover_{data}"));
    for q in 0..data {
        c.h(q);
    }
    for _ in 0..iters {
        phase_oracle(&mut c, data, marked);
        diffusion(&mut c, data);
    }
    c.measure_all();
    c
}

/// Flips the phase of the `marked` basis state using X conjugation around a
/// multi-controlled Z.
fn phase_oracle(c: &mut Circuit, data: usize, marked: u64) {
    // Qubit 0 is the most significant bit of the basis index.
    let bit = |q: usize| (marked >> (data - 1 - q)) & 1;
    for q in 0..data {
        if bit(q) == 0 {
            c.x(q);
        }
    }
    let controls: Vec<usize> = (0..data - 1).collect();
    c.mcz(&controls, data - 1);
    for q in 0..data {
        if bit(q) == 0 {
            c.x(q);
        }
    }
}

/// The Grover diffusion (inversion about the mean) operator.
fn diffusion(c: &mut Circuit, data: usize) {
    for q in 0..data {
        c.h(q);
        c.x(q);
    }
    let controls: Vec<usize> = (0..data - 1).collect();
    c.mcz(&controls, data - 1);
    for q in 0..data {
        c.x(q);
        c.h(q);
    }
}

/// A SAT-style oracle circuit over `n` qubits (QASMBench `sat_n11` stand-in):
/// `n - 1` variable qubits, one phase ancilla, and a Grover-style search for
/// an assignment satisfying a fixed clause structure.
///
/// The oracle marks assignments whose parity over three fixed variable
/// groups is odd, implemented with multi-controlled X gates onto the
/// ancilla prepared in the `|->` state.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn sat_oracle_circuit(n: usize) -> Circuit {
    assert!(
        n >= 4,
        "SAT circuit needs at least three variables and an ancilla"
    );
    let vars = n - 1;
    let ancilla = n - 1;
    let mut c = Circuit::with_name(n, &format!("sat_{n}"));
    // Ancilla in |-> so that controlled-X acts as a phase oracle.
    c.x(ancilla);
    c.h(ancilla);
    for q in 0..vars {
        c.h(q);
    }
    let iterations = 2;
    for _ in 0..iterations {
        // Clause oracle: three overlapping clauses over consecutive variables.
        for start in [0usize, vars / 3, 2 * vars / 3] {
            let a = start % vars;
            let b = (start + 1) % vars;
            let d = (start + 2) % vars;
            if a != b && b != d && a != d {
                c.ccx(a, b, ancilla);
                c.cx(d, ancilla);
            }
        }
        // Diffusion over the variable register.
        for q in 0..vars {
            c.h(q);
            c.x(q);
        }
        let controls: Vec<usize> = (0..vars - 1).collect();
        c.mcz(&controls, vars - 1);
        for q in 0..vars {
            c.x(q);
            c.h(q);
        }
    }
    for q in 0..vars {
        c.measure(q, q);
    }
    c
}

/// The quantum counterfeit-coin finding circuit over `n` qubits
/// (QASMBench `cc` stand-in): `n - 1` coin qubits and one balance ancilla.
///
/// The balance query is a CNOT fan-in from every selected coin into the
/// ancilla; the false coin is fixed to the middle coin index.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn counterfeit_coin(n: usize) -> Circuit {
    assert!(n >= 3, "counterfeit-coin circuit needs at least two coins");
    let coins = n - 1;
    let ancilla = n - 1;
    let false_coin = coins / 2;
    let mut c = Circuit::with_name(n, &format!("cc_{n}"));
    // Superposition over coin selections.
    for q in 0..coins {
        c.h(q);
    }
    // Balance ancilla in |->.
    c.x(ancilla);
    c.h(ancilla);
    c.barrier();
    // Balance query: the false coin imprints a phase on selections containing it.
    c.cx(false_coin, ancilla);
    c.barrier();
    // Decode with Hadamards and measure the coin register.
    for q in 0..coins {
        c.h(q);
        c.measure(q, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_uses_optimal_iteration_count_by_default() {
        let c = grover(4, 0b1010, None);
        // For 4 qubits the optimal iteration count is 3.
        let mcz_count = c
            .iter()
            .filter(|op| {
                matches!(op, crate::Operation::Gate { gate: crate::Gate::Z, controls, .. } if controls.len() == 3)
            })
            .count();
        assert_eq!(mcz_count, 6, "3 iterations x (oracle + diffusion)");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn grover_rejects_out_of_range_marked_state() {
        let _ = grover(3, 8, None);
    }

    #[test]
    fn sat_circuit_has_requested_width() {
        let c = sat_oracle_circuit(11);
        assert_eq!(c.num_qubits(), 11);
        assert!(c.stats().gate_count > 20);
    }

    #[test]
    fn counterfeit_coin_measures_every_coin() {
        let c = counterfeit_coin(18);
        assert_eq!(c.num_qubits(), 18);
        assert_eq!(c.stats().measure_count, 17);
    }
}
