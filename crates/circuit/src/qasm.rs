//! A front-end for (a practical subset of) OpenQASM 2.0.
//!
//! The parser supports the constructs used by the QASMBench suite and by
//! Qiskit-exported circuits:
//!
//! * `OPENQASM 2.0;` headers and `include` statements (includes are ignored;
//!   the `qelib1.inc` standard gates are built in),
//! * `qreg` / `creg` declarations (multiple registers are flattened into one
//!   qubit index space),
//! * applications of the built-in gates (`U`, `CX` and the `qelib1` set)
//!   with arithmetic parameter expressions (`pi`, `+ - * /`, parentheses and
//!   the common unary functions),
//! * user-defined `gate` declarations, expanded recursively at use sites,
//! * `measure`, `reset` and `barrier`,
//! * register broadcast (applying a gate to whole registers).
//!
//! Classical feedback (`if (c == n) ...`) is not supported and reported as an
//! error.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use crate::{Circuit, Gate, Operation};

/// Error raised while parsing an OpenQASM source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    message: String,
}

impl ParseQasmError {
    fn new(message: impl Into<String>) -> Self {
        ParseQasmError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid OpenQASM input: {}", self.message)
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 source string into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseQasmError`] for syntax errors, references to undeclared
/// registers or gates, parameter-count mismatches, and unsupported
/// constructs (classical feedback).
///
/// # Examples
///
/// ```
/// use qsdd_circuit::qasm::parse_source;
///
/// let source = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     creg c[2];
///     h q[0];
///     cx q[0], q[1];
///     measure q -> c;
/// "#;
/// let circuit = parse_source(source)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.stats().gate_count, 2);
/// # Ok::<(), qsdd_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse_source(source: &str) -> Result<Circuit, ParseQasmError> {
    parse_source_with_limit(source, usize::MAX)
}

/// [`parse_source`] with a hard qubit cap, enforced at `qreg` declaration —
/// **before** any register broadcast materialises per-qubit operations.
///
/// Services parsing untrusted sources use this so a tiny request like
/// `qreg q[9999999999]; h q;` fails fast instead of attempting to expand
/// billions of gates.
///
/// # Errors
///
/// Everything [`parse_source`] reports, plus a dedicated error once the
/// declared quantum registers exceed `max_qubits` in total.
pub fn parse_source_with_limit(source: &str, max_qubits: usize) -> Result<Circuit, ParseQasmError> {
    Parser::new(source, max_qubits)?.parse()
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Symbol(char),
    Arrow, // ->
    Str(String),
}

fn tokenize(source: &str) -> Result<Vec<Token>, ParseQasmError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    tokens.push(Token::Symbol('/'));
                }
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::Arrow);
                } else {
                    tokens.push(Token::Symbol('-'));
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    let part_of_number = c.is_ascii_digit()
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || ((c == '+' || c == '-')
                            && matches!(s.chars().last(), Some('e') | Some('E')));
                    if part_of_number {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: f64 = s
                    .parse()
                    .map_err(|_| ParseQasmError::new(format!("malformed number `{s}`")))?;
                tokens.push(Token::Number(value));
            }
            c @ ('{' | '}' | '[' | ']' | '(' | ')' | ';' | ',' | '+' | '*' | '^' | '=' | '<'
            | '>' | '!') => {
                chars.next();
                tokens.push(Token::Symbol(c));
            }
            other => {
                return Err(ParseQasmError::new(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    args: Vec<String>,
    body: Vec<RawCall>,
}

#[derive(Debug, Clone)]
struct RawCall {
    name: String,
    params: Vec<Vec<Token>>,
    args: Vec<(String, Option<usize>)>,
}

#[derive(Debug, Clone, Copy)]
struct Register {
    offset: usize,
    size: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: HashMap<String, Register>,
    cregs: HashMap<String, Register>,
    gate_defs: HashMap<String, GateDef>,
    num_qubits: usize,
    num_clbits: usize,
    max_qubits: usize,
}

impl Parser {
    fn new(source: &str, max_qubits: usize) -> Result<Self, ParseQasmError> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
            qregs: HashMap::new(),
            cregs: HashMap::new(),
            gate_defs: HashMap::new(),
            num_qubits: 0,
            num_clbits: 0,
            max_qubits,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), ParseQasmError> {
        match self.next() {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(ParseQasmError::new(format!(
                "expected `{sym}`, found {other:?}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseQasmError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseQasmError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<Circuit, ParseQasmError> {
        // First pass: collect declarations and statements while building the
        // circuit lazily (registers must appear before use, as in QASM).
        let mut pending: Vec<Statement> = Vec::new();
        while let Some(token) = self.peek().cloned() {
            match token {
                Token::Ident(word) => match word.as_str() {
                    "OPENQASM" => {
                        self.next();
                        // version number
                        let _ = self.next();
                        self.expect_symbol(';')?;
                    }
                    "include" => {
                        self.next();
                        let _ = self.next(); // file name string
                        self.expect_symbol(';')?;
                    }
                    "qreg" => {
                        self.next();
                        let (name, size) = self.parse_reg_decl()?;
                        // Enforce the cap here, before any broadcast over
                        // the register can materialise per-qubit work.
                        if size > self.max_qubits - self.num_qubits.min(self.max_qubits) {
                            return Err(ParseQasmError::new(format!(
                                "circuit exceeds the limit of {} qubits",
                                self.max_qubits
                            )));
                        }
                        self.qregs.insert(
                            name,
                            Register {
                                offset: self.num_qubits,
                                size,
                            },
                        );
                        self.num_qubits += size;
                    }
                    "creg" => {
                        self.next();
                        let (name, size) = self.parse_reg_decl()?;
                        // Classical registers get the same cap: a broadcast
                        // measure materialises one index per classical bit.
                        if size > self.max_qubits - self.num_clbits.min(self.max_qubits) {
                            return Err(ParseQasmError::new(format!(
                                "circuit exceeds the limit of {} classical bits",
                                self.max_qubits
                            )));
                        }
                        self.cregs.insert(
                            name,
                            Register {
                                offset: self.num_clbits,
                                size,
                            },
                        );
                        self.num_clbits += size;
                    }
                    "gate" => {
                        self.next();
                        self.parse_gate_def()?;
                    }
                    "opaque" => {
                        // Skip until the terminating semicolon.
                        while let Some(t) = self.next() {
                            if t == Token::Symbol(';') {
                                break;
                            }
                        }
                    }
                    "if" => {
                        return Err(ParseQasmError::new(
                            "classical feedback (`if`) is not supported",
                        ));
                    }
                    "measure" => {
                        self.next();
                        pending.push(self.parse_measure()?);
                    }
                    "reset" => {
                        self.next();
                        let arg = self.parse_argument()?;
                        self.expect_symbol(';')?;
                        pending.push(Statement::Reset(arg));
                    }
                    "barrier" => {
                        self.next();
                        // Arguments are irrelevant for the barrier semantics.
                        while let Some(t) = self.next() {
                            if t == Token::Symbol(';') {
                                break;
                            }
                        }
                        pending.push(Statement::Barrier);
                    }
                    _ => {
                        pending.push(Statement::Call(self.parse_call()?));
                    }
                },
                other => {
                    return Err(ParseQasmError::new(format!(
                        "unexpected token {other:?} at top level"
                    )))
                }
            }
        }
        if self.num_qubits == 0 {
            return Err(ParseQasmError::new("no quantum register declared"));
        }
        let mut circuit = Circuit::with_name(self.num_qubits, "qasm");
        circuit.set_num_clbits(self.num_clbits.max(self.num_qubits));
        for statement in pending {
            self.emit_statement(&statement, &mut circuit)?;
        }
        Ok(circuit)
    }

    fn parse_reg_decl(&mut self) -> Result<(String, usize), ParseQasmError> {
        let name = self.expect_ident()?;
        self.expect_symbol('[')?;
        let size = match self.next() {
            Some(Token::Number(n)) if n >= 1.0 => n as usize,
            other => {
                return Err(ParseQasmError::new(format!(
                    "invalid register size {other:?}"
                )))
            }
        };
        self.expect_symbol(']')?;
        self.expect_symbol(';')?;
        Ok((name, size))
    }

    fn parse_gate_def(&mut self) -> Result<(), ParseQasmError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek() == Some(&Token::Symbol('(')) {
            self.next();
            while self.peek() != Some(&Token::Symbol(')')) {
                params.push(self.expect_ident()?);
                if self.peek() == Some(&Token::Symbol(',')) {
                    self.next();
                }
            }
            self.next(); // ')'
        }
        let mut args = Vec::new();
        while self.peek() != Some(&Token::Symbol('{')) {
            args.push(self.expect_ident()?);
            if self.peek() == Some(&Token::Symbol(',')) {
                self.next();
            }
        }
        self.expect_symbol('{')?;
        let mut body = Vec::new();
        while self.peek() != Some(&Token::Symbol('}')) {
            if self.peek().is_none() {
                return Err(ParseQasmError::new("unterminated gate body"));
            }
            if let Some(Token::Ident(word)) = self.peek() {
                if word == "barrier" {
                    while let Some(t) = self.next() {
                        if t == Token::Symbol(';') {
                            break;
                        }
                    }
                    continue;
                }
            }
            body.push(self.parse_call()?);
        }
        self.next(); // '}'
        self.gate_defs.insert(name, GateDef { params, args, body });
        Ok(())
    }

    fn parse_call(&mut self) -> Result<RawCall, ParseQasmError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek() == Some(&Token::Symbol('(')) {
            self.next();
            let mut depth = 1usize;
            let mut current = Vec::new();
            loop {
                match self.next() {
                    Some(Token::Symbol('(')) => {
                        depth += 1;
                        current.push(Token::Symbol('('));
                    }
                    Some(Token::Symbol(')')) => {
                        depth -= 1;
                        if depth == 0 {
                            params.push(std::mem::take(&mut current));
                            break;
                        }
                        current.push(Token::Symbol(')'));
                    }
                    Some(Token::Symbol(',')) if depth == 1 => {
                        params.push(std::mem::take(&mut current));
                    }
                    Some(t) => current.push(t),
                    None => return Err(ParseQasmError::new("unterminated parameter list")),
                }
            }
            params.retain(|p| !p.is_empty());
        }
        let mut args = Vec::new();
        loop {
            args.push(self.parse_argument()?);
            match self.next() {
                Some(Token::Symbol(',')) => continue,
                Some(Token::Symbol(';')) => break,
                other => {
                    return Err(ParseQasmError::new(format!(
                        "expected `,` or `;` after gate argument, found {other:?}"
                    )))
                }
            }
        }
        Ok(RawCall { name, params, args })
    }

    fn parse_argument(&mut self) -> Result<(String, Option<usize>), ParseQasmError> {
        let name = self.expect_ident()?;
        if self.peek() == Some(&Token::Symbol('[')) {
            self.next();
            let idx = match self.next() {
                Some(Token::Number(n)) => n as usize,
                other => {
                    return Err(ParseQasmError::new(format!(
                        "invalid register index {other:?}"
                    )))
                }
            };
            self.expect_symbol(']')?;
            Ok((name, Some(idx)))
        } else {
            Ok((name, None))
        }
    }

    fn parse_measure(&mut self) -> Result<Statement, ParseQasmError> {
        let q = self.parse_argument()?;
        match self.next() {
            Some(Token::Arrow) => {}
            other => {
                return Err(ParseQasmError::new(format!(
                    "expected `->` in measure statement, found {other:?}"
                )))
            }
        }
        let c = self.parse_argument()?;
        self.expect_symbol(';')?;
        Ok(Statement::Measure(q, c))
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    fn resolve_qubits(&self, arg: &(String, Option<usize>)) -> Result<Vec<usize>, ParseQasmError> {
        let reg = self
            .qregs
            .get(&arg.0)
            .ok_or_else(|| ParseQasmError::new(format!("unknown quantum register `{}`", arg.0)))?;
        match arg.1 {
            Some(i) if i < reg.size => Ok(vec![reg.offset + i]),
            Some(i) => Err(ParseQasmError::new(format!(
                "index {i} out of range for register `{}`",
                arg.0
            ))),
            None => Ok((reg.offset..reg.offset + reg.size).collect()),
        }
    }

    fn resolve_clbits(&self, arg: &(String, Option<usize>)) -> Result<Vec<usize>, ParseQasmError> {
        let reg = self.cregs.get(&arg.0).ok_or_else(|| {
            ParseQasmError::new(format!("unknown classical register `{}`", arg.0))
        })?;
        match arg.1 {
            Some(i) if i < reg.size => Ok(vec![reg.offset + i]),
            Some(i) => Err(ParseQasmError::new(format!(
                "index {i} out of range for register `{}`",
                arg.0
            ))),
            None => Ok((reg.offset..reg.offset + reg.size).collect()),
        }
    }

    fn emit_statement(
        &self,
        statement: &Statement,
        circuit: &mut Circuit,
    ) -> Result<(), ParseQasmError> {
        match statement {
            Statement::Barrier => {
                circuit.barrier();
                Ok(())
            }
            Statement::Reset(arg) => {
                for q in self.resolve_qubits(arg)? {
                    circuit.reset(q);
                }
                Ok(())
            }
            Statement::Measure(q, c) => {
                let qubits = self.resolve_qubits(q)?;
                let clbits = self.resolve_clbits(c)?;
                if qubits.len() != clbits.len() {
                    return Err(ParseQasmError::new("measure register sizes do not match"));
                }
                for (q, c) in qubits.into_iter().zip(clbits) {
                    circuit.measure(q, c);
                }
                Ok(())
            }
            Statement::Call(call) => {
                // Broadcast over full-register arguments.
                let resolved: Vec<Vec<usize>> = call
                    .args
                    .iter()
                    .map(|a| self.resolve_qubits(a))
                    .collect::<Result<_, _>>()?;
                let broadcast = resolved.iter().map(|v| v.len()).max().unwrap_or(1);
                for (i, qubits) in resolved.iter().enumerate() {
                    if qubits.len() != 1 && qubits.len() != broadcast {
                        return Err(ParseQasmError::new(format!(
                            "argument {i} of `{}` has mismatched register size",
                            call.name
                        )));
                    }
                }
                let params: Vec<f64> = call
                    .params
                    .iter()
                    .map(|p| eval_expression(p, &HashMap::new()))
                    .collect::<Result<_, _>>()?;
                for shot in 0..broadcast {
                    let qubits: Vec<usize> = resolved
                        .iter()
                        .map(|v| if v.len() == 1 { v[0] } else { v[shot] })
                        .collect();
                    self.emit_gate(&call.name, &params, &qubits, circuit)?;
                }
                Ok(())
            }
        }
    }

    fn emit_gate(
        &self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        circuit: &mut Circuit,
    ) -> Result<(), ParseQasmError> {
        let check = |expected_p: usize, expected_q: usize| -> Result<(), ParseQasmError> {
            if params.len() != expected_p || qubits.len() != expected_q {
                Err(ParseQasmError::new(format!(
                    "gate `{name}` expects {expected_p} parameter(s) and {expected_q} qubit(s), \
                     got {} and {}",
                    params.len(),
                    qubits.len()
                )))
            } else {
                Ok(())
            }
        };
        match name {
            "U" | "u" | "u3" => {
                check(3, 1)?;
                circuit.u3(params[0], params[1], params[2], qubits[0]);
            }
            "u2" => {
                check(2, 1)?;
                circuit.gate(Gate::U2(params[0], params[1]), qubits[0]);
            }
            "u1" | "p" | "phase" => {
                check(1, 1)?;
                circuit.p(params[0], qubits[0]);
            }
            "CX" | "cx" | "cnot" => {
                check(0, 2)?;
                circuit.cx(qubits[0], qubits[1]);
            }
            "id" => {
                check(0, 1)?;
                circuit.gate(Gate::I, qubits[0]);
            }
            "x" => {
                check(0, 1)?;
                circuit.x(qubits[0]);
            }
            "y" => {
                check(0, 1)?;
                circuit.y(qubits[0]);
            }
            "z" => {
                check(0, 1)?;
                circuit.z(qubits[0]);
            }
            "h" => {
                check(0, 1)?;
                circuit.h(qubits[0]);
            }
            "s" => {
                check(0, 1)?;
                circuit.s(qubits[0]);
            }
            "sdg" => {
                check(0, 1)?;
                circuit.sdg(qubits[0]);
            }
            "t" => {
                check(0, 1)?;
                circuit.t(qubits[0]);
            }
            "tdg" => {
                check(0, 1)?;
                circuit.tdg(qubits[0]);
            }
            "sx" => {
                check(0, 1)?;
                circuit.sx(qubits[0]);
            }
            "rx" => {
                check(1, 1)?;
                circuit.rx(params[0], qubits[0]);
            }
            "ry" => {
                check(1, 1)?;
                circuit.ry(params[0], qubits[0]);
            }
            "rz" => {
                check(1, 1)?;
                circuit.rz(params[0], qubits[0]);
            }
            "cy" => {
                check(0, 2)?;
                circuit.cy(qubits[0], qubits[1]);
            }
            "cz" => {
                check(0, 2)?;
                circuit.cz(qubits[0], qubits[1]);
            }
            "ch" => {
                check(0, 2)?;
                circuit.ch(qubits[0], qubits[1]);
            }
            "swap" => {
                check(0, 2)?;
                circuit.swap(qubits[0], qubits[1]);
            }
            "ccx" | "toffoli" => {
                check(0, 3)?;
                circuit.ccx(qubits[0], qubits[1], qubits[2]);
            }
            "cswap" | "fredkin" => {
                check(0, 3)?;
                circuit.cswap(qubits[0], qubits[1], qubits[2]);
            }
            "crx" => {
                check(1, 2)?;
                circuit.controlled_gate(Gate::Rx(params[0]), &[qubits[0]], qubits[1]);
            }
            "cry" => {
                check(1, 2)?;
                circuit.controlled_gate(Gate::Ry(params[0]), &[qubits[0]], qubits[1]);
            }
            "crz" => {
                check(1, 2)?;
                circuit.crz(params[0], qubits[0], qubits[1]);
            }
            "cu1" | "cp" => {
                check(1, 2)?;
                circuit.cp(params[0], qubits[0], qubits[1]);
            }
            "cu3" => {
                check(3, 2)?;
                circuit.controlled_gate(
                    Gate::U3(params[0], params[1], params[2]),
                    &[qubits[0]],
                    qubits[1],
                );
            }
            "rzz" => {
                check(1, 2)?;
                circuit.cx(qubits[0], qubits[1]);
                circuit.rz(params[0], qubits[1]);
                circuit.cx(qubits[0], qubits[1]);
            }
            other => {
                let def = self
                    .gate_defs
                    .get(other)
                    .ok_or_else(|| ParseQasmError::new(format!("unknown gate `{other}`")))?;
                if def.params.len() != params.len() || def.args.len() != qubits.len() {
                    return Err(ParseQasmError::new(format!(
                        "gate `{other}` called with wrong parameter or argument count"
                    )));
                }
                let param_env: HashMap<String, f64> = def
                    .params
                    .iter()
                    .cloned()
                    .zip(params.iter().copied())
                    .collect();
                let arg_env: HashMap<String, usize> = def
                    .args
                    .iter()
                    .cloned()
                    .zip(qubits.iter().copied())
                    .collect();
                for call in &def.body {
                    let nested_params: Vec<f64> = call
                        .params
                        .iter()
                        .map(|p| eval_expression(p, &param_env))
                        .collect::<Result<_, _>>()?;
                    let nested_qubits: Vec<usize> = call
                        .args
                        .iter()
                        .map(|(name, idx)| {
                            if idx.is_some() {
                                return Err(ParseQasmError::new(
                                    "indexed arguments are not allowed inside gate bodies",
                                ));
                            }
                            arg_env.get(name).copied().ok_or_else(|| {
                                ParseQasmError::new(format!(
                                    "unknown formal argument `{name}` in gate body"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    self.emit_gate(&call.name, &nested_params, &nested_qubits, circuit)?;
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Statement {
    Call(RawCall),
    Measure((String, Option<usize>), (String, Option<usize>)),
    Reset((String, Option<usize>)),
    Barrier,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Error raised while emitting a circuit as OpenQASM ([`write_source`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteQasmError {
    message: String,
}

impl WriteQasmError {
    fn new(message: impl Into<String>) -> Self {
        WriteQasmError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WriteQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot emit OpenQASM: {}", self.message)
    }
}

impl std::error::Error for WriteQasmError {}

/// Emits a circuit as OpenQASM 2.0 source, the inverse of [`parse_source`].
///
/// The output uses a single flattened quantum register `q` and classical
/// register `c`, so parsing it back yields a circuit with identical
/// operations (multi-register structure of an original source is not
/// preserved — the parser already flattens it). Gate parameters are printed
/// with Rust's shortest-round-trip float formatting, so angles survive a
/// parse → emit → parse cycle bit-exactly.
///
/// # Errors
///
/// Not every [`Circuit`] is expressible in the OpenQASM 2.0 subset the
/// parser accepts: controlled gates are limited to the named `qelib1` forms
/// (one control on `x`/`y`/`z`/`h`/`rx`/`ry`/`rz`/`p`/`u3`, two controls on
/// `x`), and parameters must be finite. Anything else returns a
/// [`WriteQasmError`] naming the offending operation.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::qasm::{parse_source, write_source};
/// use qsdd_circuit::Circuit;
///
/// let mut circuit = Circuit::new(2);
/// circuit.h(0).cx(0, 1).measure_all();
/// let source = write_source(&circuit)?;
/// let reparsed = parse_source(&source).unwrap();
/// assert_eq!(reparsed.operations(), circuit.operations());
/// # Ok::<(), qsdd_circuit::qasm::WriteQasmError>(())
/// ```
pub fn write_source(circuit: &Circuit) -> Result<String, WriteQasmError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for op in circuit.operations() {
        write_operation(&mut out, op)?;
    }
    Ok(out)
}

/// Formats one gate parameter, rejecting values the tokenizer cannot read
/// back (non-finite floats have no OpenQASM literal).
fn format_param(value: f64, gate: &Gate) -> Result<String, WriteQasmError> {
    if !value.is_finite() {
        return Err(WriteQasmError::new(format!(
            "gate `{}` has a non-finite parameter {value}",
            gate.name()
        )));
    }
    // `{}` on f64 prints the shortest decimal that parses back to the same
    // bits; the QASM expression grammar covers sign and decimal forms.
    Ok(format!("{value}"))
}

/// The `name(params)` call head of an uncontrolled gate.
fn gate_head(gate: &Gate) -> Result<String, WriteQasmError> {
    let params: Vec<f64> = match *gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => vec![t],
        Gate::U2(a, b) => vec![a, b],
        Gate::U3(a, b, c) => vec![a, b, c],
        _ => Vec::new(),
    };
    if params.is_empty() {
        return Ok(gate.name().to_string());
    }
    let rendered: Vec<String> = params
        .iter()
        .map(|&p| format_param(p, gate))
        .collect::<Result<_, _>>()?;
    Ok(format!("{}({})", gate.name(), rendered.join(",")))
}

fn write_operation(out: &mut String, op: &Operation) -> Result<(), WriteQasmError> {
    match op {
        Operation::Gate {
            gate,
            target,
            controls,
        } => write_gate(out, gate, *target, controls),
        Operation::Swap { a, b } => {
            let _ = writeln!(out, "swap q[{a}], q[{b}];");
            Ok(())
        }
        Operation::Measure { qubit, clbit } => {
            let _ = writeln!(out, "measure q[{qubit}] -> c[{clbit}];");
            Ok(())
        }
        Operation::Reset { qubit } => {
            let _ = writeln!(out, "reset q[{qubit}];");
            Ok(())
        }
        Operation::Barrier => {
            let _ = writeln!(out, "barrier q;");
            Ok(())
        }
    }
}

fn write_gate(
    out: &mut String,
    gate: &Gate,
    target: usize,
    controls: &[usize],
) -> Result<(), WriteQasmError> {
    match controls {
        [] => {
            // `swap` reaches the writer as Operation::Swap; a bare
            // Gate::Swap has no single target and cannot occur in a valid
            // circuit, so every remaining gate takes exactly one qubit.
            if *gate == Gate::Swap {
                return Err(WriteQasmError::new("bare swap gate outside a swap op"));
            }
            let _ = writeln!(out, "{} q[{target}];", gate_head(gate)?);
        }
        [control] => {
            // The named singly-controlled `qelib1` forms; everything else
            // (e.g. a controlled S or Sx) has no OpenQASM 2.0 spelling the
            // parser accepts.
            let head = match gate {
                Gate::X => "cx".to_string(),
                Gate::Y => "cy".to_string(),
                Gate::Z => "cz".to_string(),
                Gate::H => "ch".to_string(),
                Gate::Rx(t) => format!("crx({})", format_param(*t, gate)?),
                Gate::Ry(t) => format!("cry({})", format_param(*t, gate)?),
                Gate::Rz(t) => format!("crz({})", format_param(*t, gate)?),
                Gate::Phase(t) => format!("cp({})", format_param(*t, gate)?),
                Gate::U3(a, b, c) => format!(
                    "cu3({},{},{})",
                    format_param(*a, gate)?,
                    format_param(*b, gate)?,
                    format_param(*c, gate)?
                ),
                other => {
                    return Err(WriteQasmError::new(format!(
                        "controlled `{}` has no OpenQASM 2.0 form",
                        other.name()
                    )))
                }
            };
            let _ = writeln!(out, "{head} q[{control}], q[{target}];");
        }
        [c0, c1] if *gate == Gate::X => {
            let _ = writeln!(out, "ccx q[{c0}], q[{c1}], q[{target}];");
        }
        _ => {
            return Err(WriteQasmError::new(format!(
                "`{}` with {} controls has no OpenQASM 2.0 form",
                gate.name(),
                controls.len()
            )))
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval_expression(tokens: &[Token], env: &HashMap<String, f64>) -> Result<f64, ParseQasmError> {
    let mut parser = ExprParser {
        tokens,
        pos: 0,
        env,
    };
    let value = parser.parse_sum()?;
    if parser.pos != tokens.len() {
        return Err(ParseQasmError::new("trailing tokens in expression"));
    }
    Ok(value)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    env: &'a HashMap<String, f64>,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_sum(&mut self) -> Result<f64, ParseQasmError> {
        let mut value = self.parse_product()?;
        while let Some(Token::Symbol(op @ ('+' | '-'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.parse_product()?;
            value = if op == '+' { value + rhs } else { value - rhs };
        }
        Ok(value)
    }

    fn parse_product(&mut self) -> Result<f64, ParseQasmError> {
        let mut value = self.parse_unary()?;
        while let Some(Token::Symbol(op @ ('*' | '/' | '^'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.parse_unary()?;
            value = match op {
                '*' => value * rhs,
                '/' => value / rhs,
                _ => value.powf(rhs),
            };
        }
        Ok(value)
    }

    fn parse_unary(&mut self) -> Result<f64, ParseQasmError> {
        match self.peek() {
            Some(Token::Symbol('-')) => {
                self.pos += 1;
                Ok(-self.parse_unary()?)
            }
            Some(Token::Symbol('+')) => {
                self.pos += 1;
                self.parse_unary()
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<f64, ParseQasmError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(Token::Symbol('(')) => {
                self.pos += 1;
                let value = self.parse_sum()?;
                match self.peek() {
                    Some(Token::Symbol(')')) => {
                        self.pos += 1;
                        Ok(value)
                    }
                    _ => Err(ParseQasmError::new("missing closing parenthesis")),
                }
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "pi" => Ok(std::f64::consts::PI),
                    "sin" | "cos" | "tan" | "exp" | "ln" | "sqrt" => {
                        // Function call: expect parenthesised argument.
                        match self.peek() {
                            Some(Token::Symbol('(')) => {
                                self.pos += 1;
                                let arg = self.parse_sum()?;
                                match self.peek() {
                                    Some(Token::Symbol(')')) => self.pos += 1,
                                    _ => {
                                        return Err(ParseQasmError::new(
                                            "missing closing parenthesis after function",
                                        ))
                                    }
                                }
                                Ok(match name.as_str() {
                                    "sin" => arg.sin(),
                                    "cos" => arg.cos(),
                                    "tan" => arg.tan(),
                                    "exp" => arg.exp(),
                                    "ln" => arg.ln(),
                                    _ => arg.sqrt(),
                                })
                            }
                            _ => Err(ParseQasmError::new(format!(
                                "function `{name}` requires parentheses"
                            ))),
                        }
                    }
                    _ => self.env.get(&name).copied().ok_or_else(|| {
                        ParseQasmError::new(format!("unknown identifier `{name}` in expression"))
                    }),
                }
            }
            other => Err(ParseQasmError::new(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;

    #[test]
    fn parses_bell_circuit() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0], q[1];
            measure q -> c;
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.stats().gate_count, 2);
        assert_eq!(c.stats().measure_count, 2);
    }

    #[test]
    fn parses_parameter_expressions() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[1];
            rz(pi/2) q[0];
            rx(-pi/4 + 0.5) q[0];
            u3(2*pi, pi/8, sqrt(2)) q[0];
        "#;
        let c = parse_source(src).unwrap();
        match &c.operations()[0] {
            Operation::Gate {
                gate: Gate::Rz(angle),
                ..
            } => assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[1] {
            Operation::Gate {
                gate: Gate::Rx(angle),
                ..
            } => assert!((angle - (0.5 - std::f64::consts::FRAC_PI_4)).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn broadcasts_over_registers() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[3];
            h q;
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 3);
    }

    #[test]
    fn expands_custom_gate_definitions() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[2];
            gate bell a, b { h a; cx a, b; }
            gate rot(theta) a { rz(theta) a; rz(theta/2) a; }
            bell q[0], q[1];
            rot(pi) q[0];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 4);
        match &c.operations()[3] {
            Operation::Gate {
                gate: Gate::Rz(angle),
                ..
            } => assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn handles_multiple_registers() {
        let src = r#"
            OPENQASM 2.0;
            qreg a[2];
            qreg b[3];
            creg c[5];
            x a[1];
            x b[0];
            measure b[2] -> c[4];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 5);
        // a[1] -> flat index 1, b[0] -> flat index 2.
        match &c.operations()[0] {
            Operation::Gate { target, .. } => assert_eq!(*target, 1),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[1] {
            Operation::Gate { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[2] {
            Operation::Measure { qubit, clbit } => {
                assert_eq!(*qubit, 4);
                assert_eq!(*clbit, 4);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn reports_unknown_gate() {
        let src = "OPENQASM 2.0; qreg q[1]; foo q[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
    }

    #[test]
    fn reports_missing_register() {
        let src = "OPENQASM 2.0; qreg q[1]; x r[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("unknown quantum register"));
    }

    #[test]
    fn rejects_classical_feedback() {
        let src = "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c == 1) x q[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn reports_out_of_range_index() {
        let src = "OPENQASM 2.0; qreg q[2]; x q[5];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn skips_comments_and_barriers() {
        let src = r#"
            OPENQASM 2.0;
            // prepare register
            qreg q[2];
            h q[0]; // superposition
            barrier q;
            cx q[0], q[1];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 2);
    }

    #[test]
    fn qubit_limit_rejects_oversized_registers_before_expansion() {
        // The error must fire at the declaration — a broadcast over an
        // unchecked giant register would try to materialise one op per
        // qubit.
        let big = "OPENQASM 2.0; qreg q[9999999]; h q;";
        let err = parse_source_with_limit(big, 63).unwrap_err();
        assert!(err.to_string().contains("limit of 63 qubits"), "{err}");
        let creg = "OPENQASM 2.0; qreg q[2]; creg c[9999999]; h q[0];";
        let err = parse_source_with_limit(creg, 63).unwrap_err();
        assert!(err.to_string().contains("classical bits"), "{err}");
        // Cumulative across registers, and inclusive at the bound.
        let two = "OPENQASM 2.0; qreg a[40]; qreg b[40]; h a[0];";
        assert!(parse_source_with_limit(two, 63).is_err());
        let ok = "OPENQASM 2.0; qreg q[63]; h q[62];";
        assert_eq!(parse_source_with_limit(ok, 63).unwrap().num_qubits(), 63);
        // The unlimited entry point is unaffected.
        assert!(parse_source("OPENQASM 2.0; qreg q[100]; h q[0];").is_ok());
    }

    #[test]
    fn write_source_round_trips_primitive_operations() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .sdg(2)
            .sx(0)
            .rz(-0.725, 1)
            .p(std::f64::consts::PI / 3.0, 2)
            .u3(0.1, -0.2, 0.3, 0)
            .cx(0, 1)
            .cz(1, 2)
            .ch(0, 2)
            .cp(0.25, 0, 1)
            .crz(-1.5, 2, 0)
            .ccx(0, 1, 2)
            .swap(0, 2)
            .barrier()
            .reset(1)
            .measure(0, 0)
            .measure(2, 1);
        let source = write_source(&c).unwrap();
        let back = parse_source(&source).unwrap();
        assert_eq!(back.num_qubits(), c.num_qubits());
        assert_eq!(back.operations(), c.operations());
    }

    #[test]
    fn write_source_emission_is_a_fixed_point() {
        // Emitting an already-normalized circuit and reparsing must yield
        // byte-identical source (the server echoes this canonical form).
        let mut c = Circuit::new(2);
        c.h(0).crz(1.25, 0, 1).measure_all();
        let source = write_source(&c).unwrap();
        let again = write_source(&parse_source(&source).unwrap()).unwrap();
        assert_eq!(source, again);
    }

    #[test]
    fn write_source_preserves_angle_bits() {
        let angle = 0.1f64 + 0.2f64; // not exactly representable as 0.3
        let mut c = Circuit::new(1);
        c.rx(angle, 0);
        let back = parse_source(&write_source(&c).unwrap()).unwrap();
        match &back.operations()[0] {
            Operation::Gate {
                gate: Gate::Rx(parsed),
                ..
            } => assert_eq!(parsed.to_bits(), angle.to_bits()),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn write_source_rejects_inexpressible_operations() {
        let mut controlled_s = Circuit::new(2);
        controlled_s.controlled_gate(Gate::S, &[0], 1);
        let err = write_source(&controlled_s).unwrap_err();
        assert!(err.to_string().contains("controlled `s`"), "{err}");

        let mut mcz = Circuit::new(4);
        mcz.mcz(&[0, 1, 2], 3);
        let err = write_source(&mcz).unwrap_err();
        assert!(err.to_string().contains("3 controls"), "{err}");

        let mut nan = Circuit::new(1);
        nan.rz(f64::NAN, 0);
        let err = write_source(&nan).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn cry_round_trips_through_the_writer() {
        let mut c = Circuit::new(2);
        c.controlled_gate(Gate::Ry(0.5), &[1], 0);
        let source = write_source(&c).unwrap();
        assert!(source.contains("cry(0.5) q[1], q[0];"), "{source}");
        assert_eq!(parse_source(&source).unwrap().operations(), c.operations());
    }

    #[test]
    fn parses_ccx_and_swap() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[3];
            ccx q[0], q[1], q[2];
            swap q[0], q[2];
            cswap q[0], q[1], q[2];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert!(c.stats().gate_count >= 5);
    }
}
