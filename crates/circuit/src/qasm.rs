//! A front-end for (a practical subset of) OpenQASM 2.0.
//!
//! The parser supports the constructs used by the QASMBench suite and by
//! Qiskit-exported circuits:
//!
//! * `OPENQASM 2.0;` headers and `include` statements (includes are ignored;
//!   the `qelib1.inc` standard gates are built in),
//! * `qreg` / `creg` declarations (multiple registers are flattened into one
//!   qubit index space),
//! * applications of the built-in gates (`U`, `CX` and the `qelib1` set)
//!   with arithmetic parameter expressions (`pi`, `+ - * /`, parentheses and
//!   the common unary functions),
//! * user-defined `gate` declarations, expanded recursively at use sites,
//! * `measure`, `reset` and `barrier`,
//! * register broadcast (applying a gate to whole registers).
//!
//! Classical feedback (`if (c == n) ...`) is not supported and reported as an
//! error.

use std::collections::HashMap;
use std::fmt;

use crate::{Circuit, Gate};

/// Error raised while parsing an OpenQASM source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    message: String,
}

impl ParseQasmError {
    fn new(message: impl Into<String>) -> Self {
        ParseQasmError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid OpenQASM input: {}", self.message)
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 source string into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseQasmError`] for syntax errors, references to undeclared
/// registers or gates, parameter-count mismatches, and unsupported
/// constructs (classical feedback).
///
/// # Examples
///
/// ```
/// use qsdd_circuit::qasm::parse_source;
///
/// let source = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     creg c[2];
///     h q[0];
///     cx q[0], q[1];
///     measure q -> c;
/// "#;
/// let circuit = parse_source(source)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.stats().gate_count, 2);
/// # Ok::<(), qsdd_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse_source(source: &str) -> Result<Circuit, ParseQasmError> {
    Parser::new(source)?.parse()
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Symbol(char),
    Arrow, // ->
    Str(String),
}

fn tokenize(source: &str) -> Result<Vec<Token>, ParseQasmError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    tokens.push(Token::Symbol('/'));
                }
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::Arrow);
                } else {
                    tokens.push(Token::Symbol('-'));
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    let part_of_number = c.is_ascii_digit()
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || ((c == '+' || c == '-')
                            && matches!(s.chars().last(), Some('e') | Some('E')));
                    if part_of_number {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: f64 = s
                    .parse()
                    .map_err(|_| ParseQasmError::new(format!("malformed number `{s}`")))?;
                tokens.push(Token::Number(value));
            }
            c @ ('{' | '}' | '[' | ']' | '(' | ')' | ';' | ',' | '+' | '*' | '^' | '=' | '<'
            | '>' | '!') => {
                chars.next();
                tokens.push(Token::Symbol(c));
            }
            other => {
                return Err(ParseQasmError::new(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    args: Vec<String>,
    body: Vec<RawCall>,
}

#[derive(Debug, Clone)]
struct RawCall {
    name: String,
    params: Vec<Vec<Token>>,
    args: Vec<(String, Option<usize>)>,
}

#[derive(Debug, Clone, Copy)]
struct Register {
    offset: usize,
    size: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: HashMap<String, Register>,
    cregs: HashMap<String, Register>,
    gate_defs: HashMap<String, GateDef>,
    num_qubits: usize,
    num_clbits: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self, ParseQasmError> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
            qregs: HashMap::new(),
            cregs: HashMap::new(),
            gate_defs: HashMap::new(),
            num_qubits: 0,
            num_clbits: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), ParseQasmError> {
        match self.next() {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(ParseQasmError::new(format!(
                "expected `{sym}`, found {other:?}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseQasmError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseQasmError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<Circuit, ParseQasmError> {
        // First pass: collect declarations and statements while building the
        // circuit lazily (registers must appear before use, as in QASM).
        let mut pending: Vec<Statement> = Vec::new();
        while let Some(token) = self.peek().cloned() {
            match token {
                Token::Ident(word) => match word.as_str() {
                    "OPENQASM" => {
                        self.next();
                        // version number
                        let _ = self.next();
                        self.expect_symbol(';')?;
                    }
                    "include" => {
                        self.next();
                        let _ = self.next(); // file name string
                        self.expect_symbol(';')?;
                    }
                    "qreg" => {
                        self.next();
                        let (name, size) = self.parse_reg_decl()?;
                        self.qregs.insert(
                            name,
                            Register {
                                offset: self.num_qubits,
                                size,
                            },
                        );
                        self.num_qubits += size;
                    }
                    "creg" => {
                        self.next();
                        let (name, size) = self.parse_reg_decl()?;
                        self.cregs.insert(
                            name,
                            Register {
                                offset: self.num_clbits,
                                size,
                            },
                        );
                        self.num_clbits += size;
                    }
                    "gate" => {
                        self.next();
                        self.parse_gate_def()?;
                    }
                    "opaque" => {
                        // Skip until the terminating semicolon.
                        while let Some(t) = self.next() {
                            if t == Token::Symbol(';') {
                                break;
                            }
                        }
                    }
                    "if" => {
                        return Err(ParseQasmError::new(
                            "classical feedback (`if`) is not supported",
                        ));
                    }
                    "measure" => {
                        self.next();
                        pending.push(self.parse_measure()?);
                    }
                    "reset" => {
                        self.next();
                        let arg = self.parse_argument()?;
                        self.expect_symbol(';')?;
                        pending.push(Statement::Reset(arg));
                    }
                    "barrier" => {
                        self.next();
                        // Arguments are irrelevant for the barrier semantics.
                        while let Some(t) = self.next() {
                            if t == Token::Symbol(';') {
                                break;
                            }
                        }
                        pending.push(Statement::Barrier);
                    }
                    _ => {
                        pending.push(Statement::Call(self.parse_call()?));
                    }
                },
                other => {
                    return Err(ParseQasmError::new(format!(
                        "unexpected token {other:?} at top level"
                    )))
                }
            }
        }
        if self.num_qubits == 0 {
            return Err(ParseQasmError::new("no quantum register declared"));
        }
        let mut circuit = Circuit::with_name(self.num_qubits, "qasm");
        circuit.set_num_clbits(self.num_clbits.max(self.num_qubits));
        for statement in pending {
            self.emit_statement(&statement, &mut circuit)?;
        }
        Ok(circuit)
    }

    fn parse_reg_decl(&mut self) -> Result<(String, usize), ParseQasmError> {
        let name = self.expect_ident()?;
        self.expect_symbol('[')?;
        let size = match self.next() {
            Some(Token::Number(n)) if n >= 1.0 => n as usize,
            other => {
                return Err(ParseQasmError::new(format!(
                    "invalid register size {other:?}"
                )))
            }
        };
        self.expect_symbol(']')?;
        self.expect_symbol(';')?;
        Ok((name, size))
    }

    fn parse_gate_def(&mut self) -> Result<(), ParseQasmError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek() == Some(&Token::Symbol('(')) {
            self.next();
            while self.peek() != Some(&Token::Symbol(')')) {
                params.push(self.expect_ident()?);
                if self.peek() == Some(&Token::Symbol(',')) {
                    self.next();
                }
            }
            self.next(); // ')'
        }
        let mut args = Vec::new();
        while self.peek() != Some(&Token::Symbol('{')) {
            args.push(self.expect_ident()?);
            if self.peek() == Some(&Token::Symbol(',')) {
                self.next();
            }
        }
        self.expect_symbol('{')?;
        let mut body = Vec::new();
        while self.peek() != Some(&Token::Symbol('}')) {
            if self.peek().is_none() {
                return Err(ParseQasmError::new("unterminated gate body"));
            }
            if let Some(Token::Ident(word)) = self.peek() {
                if word == "barrier" {
                    while let Some(t) = self.next() {
                        if t == Token::Symbol(';') {
                            break;
                        }
                    }
                    continue;
                }
            }
            body.push(self.parse_call()?);
        }
        self.next(); // '}'
        self.gate_defs.insert(name, GateDef { params, args, body });
        Ok(())
    }

    fn parse_call(&mut self) -> Result<RawCall, ParseQasmError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek() == Some(&Token::Symbol('(')) {
            self.next();
            let mut depth = 1usize;
            let mut current = Vec::new();
            loop {
                match self.next() {
                    Some(Token::Symbol('(')) => {
                        depth += 1;
                        current.push(Token::Symbol('('));
                    }
                    Some(Token::Symbol(')')) => {
                        depth -= 1;
                        if depth == 0 {
                            params.push(std::mem::take(&mut current));
                            break;
                        }
                        current.push(Token::Symbol(')'));
                    }
                    Some(Token::Symbol(',')) if depth == 1 => {
                        params.push(std::mem::take(&mut current));
                    }
                    Some(t) => current.push(t),
                    None => return Err(ParseQasmError::new("unterminated parameter list")),
                }
            }
            params.retain(|p| !p.is_empty());
        }
        let mut args = Vec::new();
        loop {
            args.push(self.parse_argument()?);
            match self.next() {
                Some(Token::Symbol(',')) => continue,
                Some(Token::Symbol(';')) => break,
                other => {
                    return Err(ParseQasmError::new(format!(
                        "expected `,` or `;` after gate argument, found {other:?}"
                    )))
                }
            }
        }
        Ok(RawCall { name, params, args })
    }

    fn parse_argument(&mut self) -> Result<(String, Option<usize>), ParseQasmError> {
        let name = self.expect_ident()?;
        if self.peek() == Some(&Token::Symbol('[')) {
            self.next();
            let idx = match self.next() {
                Some(Token::Number(n)) => n as usize,
                other => {
                    return Err(ParseQasmError::new(format!(
                        "invalid register index {other:?}"
                    )))
                }
            };
            self.expect_symbol(']')?;
            Ok((name, Some(idx)))
        } else {
            Ok((name, None))
        }
    }

    fn parse_measure(&mut self) -> Result<Statement, ParseQasmError> {
        let q = self.parse_argument()?;
        match self.next() {
            Some(Token::Arrow) => {}
            other => {
                return Err(ParseQasmError::new(format!(
                    "expected `->` in measure statement, found {other:?}"
                )))
            }
        }
        let c = self.parse_argument()?;
        self.expect_symbol(';')?;
        Ok(Statement::Measure(q, c))
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    fn resolve_qubits(&self, arg: &(String, Option<usize>)) -> Result<Vec<usize>, ParseQasmError> {
        let reg = self
            .qregs
            .get(&arg.0)
            .ok_or_else(|| ParseQasmError::new(format!("unknown quantum register `{}`", arg.0)))?;
        match arg.1 {
            Some(i) if i < reg.size => Ok(vec![reg.offset + i]),
            Some(i) => Err(ParseQasmError::new(format!(
                "index {i} out of range for register `{}`",
                arg.0
            ))),
            None => Ok((reg.offset..reg.offset + reg.size).collect()),
        }
    }

    fn resolve_clbits(&self, arg: &(String, Option<usize>)) -> Result<Vec<usize>, ParseQasmError> {
        let reg = self.cregs.get(&arg.0).ok_or_else(|| {
            ParseQasmError::new(format!("unknown classical register `{}`", arg.0))
        })?;
        match arg.1 {
            Some(i) if i < reg.size => Ok(vec![reg.offset + i]),
            Some(i) => Err(ParseQasmError::new(format!(
                "index {i} out of range for register `{}`",
                arg.0
            ))),
            None => Ok((reg.offset..reg.offset + reg.size).collect()),
        }
    }

    fn emit_statement(
        &self,
        statement: &Statement,
        circuit: &mut Circuit,
    ) -> Result<(), ParseQasmError> {
        match statement {
            Statement::Barrier => {
                circuit.barrier();
                Ok(())
            }
            Statement::Reset(arg) => {
                for q in self.resolve_qubits(arg)? {
                    circuit.reset(q);
                }
                Ok(())
            }
            Statement::Measure(q, c) => {
                let qubits = self.resolve_qubits(q)?;
                let clbits = self.resolve_clbits(c)?;
                if qubits.len() != clbits.len() {
                    return Err(ParseQasmError::new("measure register sizes do not match"));
                }
                for (q, c) in qubits.into_iter().zip(clbits) {
                    circuit.measure(q, c);
                }
                Ok(())
            }
            Statement::Call(call) => {
                // Broadcast over full-register arguments.
                let resolved: Vec<Vec<usize>> = call
                    .args
                    .iter()
                    .map(|a| self.resolve_qubits(a))
                    .collect::<Result<_, _>>()?;
                let broadcast = resolved.iter().map(|v| v.len()).max().unwrap_or(1);
                for (i, qubits) in resolved.iter().enumerate() {
                    if qubits.len() != 1 && qubits.len() != broadcast {
                        return Err(ParseQasmError::new(format!(
                            "argument {i} of `{}` has mismatched register size",
                            call.name
                        )));
                    }
                }
                let params: Vec<f64> = call
                    .params
                    .iter()
                    .map(|p| eval_expression(p, &HashMap::new()))
                    .collect::<Result<_, _>>()?;
                for shot in 0..broadcast {
                    let qubits: Vec<usize> = resolved
                        .iter()
                        .map(|v| if v.len() == 1 { v[0] } else { v[shot] })
                        .collect();
                    self.emit_gate(&call.name, &params, &qubits, circuit)?;
                }
                Ok(())
            }
        }
    }

    fn emit_gate(
        &self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        circuit: &mut Circuit,
    ) -> Result<(), ParseQasmError> {
        let check = |expected_p: usize, expected_q: usize| -> Result<(), ParseQasmError> {
            if params.len() != expected_p || qubits.len() != expected_q {
                Err(ParseQasmError::new(format!(
                    "gate `{name}` expects {expected_p} parameter(s) and {expected_q} qubit(s), \
                     got {} and {}",
                    params.len(),
                    qubits.len()
                )))
            } else {
                Ok(())
            }
        };
        match name {
            "U" | "u" | "u3" => {
                check(3, 1)?;
                circuit.u3(params[0], params[1], params[2], qubits[0]);
            }
            "u2" => {
                check(2, 1)?;
                circuit.gate(Gate::U2(params[0], params[1]), qubits[0]);
            }
            "u1" | "p" | "phase" => {
                check(1, 1)?;
                circuit.p(params[0], qubits[0]);
            }
            "CX" | "cx" | "cnot" => {
                check(0, 2)?;
                circuit.cx(qubits[0], qubits[1]);
            }
            "id" => {
                check(0, 1)?;
                circuit.gate(Gate::I, qubits[0]);
            }
            "x" => {
                check(0, 1)?;
                circuit.x(qubits[0]);
            }
            "y" => {
                check(0, 1)?;
                circuit.y(qubits[0]);
            }
            "z" => {
                check(0, 1)?;
                circuit.z(qubits[0]);
            }
            "h" => {
                check(0, 1)?;
                circuit.h(qubits[0]);
            }
            "s" => {
                check(0, 1)?;
                circuit.s(qubits[0]);
            }
            "sdg" => {
                check(0, 1)?;
                circuit.sdg(qubits[0]);
            }
            "t" => {
                check(0, 1)?;
                circuit.t(qubits[0]);
            }
            "tdg" => {
                check(0, 1)?;
                circuit.tdg(qubits[0]);
            }
            "sx" => {
                check(0, 1)?;
                circuit.sx(qubits[0]);
            }
            "rx" => {
                check(1, 1)?;
                circuit.rx(params[0], qubits[0]);
            }
            "ry" => {
                check(1, 1)?;
                circuit.ry(params[0], qubits[0]);
            }
            "rz" => {
                check(1, 1)?;
                circuit.rz(params[0], qubits[0]);
            }
            "cy" => {
                check(0, 2)?;
                circuit.cy(qubits[0], qubits[1]);
            }
            "cz" => {
                check(0, 2)?;
                circuit.cz(qubits[0], qubits[1]);
            }
            "ch" => {
                check(0, 2)?;
                circuit.ch(qubits[0], qubits[1]);
            }
            "swap" => {
                check(0, 2)?;
                circuit.swap(qubits[0], qubits[1]);
            }
            "ccx" | "toffoli" => {
                check(0, 3)?;
                circuit.ccx(qubits[0], qubits[1], qubits[2]);
            }
            "cswap" | "fredkin" => {
                check(0, 3)?;
                circuit.cswap(qubits[0], qubits[1], qubits[2]);
            }
            "crx" => {
                check(1, 2)?;
                circuit.controlled_gate(Gate::Rx(params[0]), &[qubits[0]], qubits[1]);
            }
            "cry" => {
                check(1, 2)?;
                circuit.controlled_gate(Gate::Ry(params[0]), &[qubits[0]], qubits[1]);
            }
            "crz" => {
                check(1, 2)?;
                circuit.crz(params[0], qubits[0], qubits[1]);
            }
            "cu1" | "cp" => {
                check(1, 2)?;
                circuit.cp(params[0], qubits[0], qubits[1]);
            }
            "cu3" => {
                check(3, 2)?;
                circuit.controlled_gate(
                    Gate::U3(params[0], params[1], params[2]),
                    &[qubits[0]],
                    qubits[1],
                );
            }
            "rzz" => {
                check(1, 2)?;
                circuit.cx(qubits[0], qubits[1]);
                circuit.rz(params[0], qubits[1]);
                circuit.cx(qubits[0], qubits[1]);
            }
            other => {
                let def = self
                    .gate_defs
                    .get(other)
                    .ok_or_else(|| ParseQasmError::new(format!("unknown gate `{other}`")))?;
                if def.params.len() != params.len() || def.args.len() != qubits.len() {
                    return Err(ParseQasmError::new(format!(
                        "gate `{other}` called with wrong parameter or argument count"
                    )));
                }
                let param_env: HashMap<String, f64> = def
                    .params
                    .iter()
                    .cloned()
                    .zip(params.iter().copied())
                    .collect();
                let arg_env: HashMap<String, usize> = def
                    .args
                    .iter()
                    .cloned()
                    .zip(qubits.iter().copied())
                    .collect();
                for call in &def.body {
                    let nested_params: Vec<f64> = call
                        .params
                        .iter()
                        .map(|p| eval_expression(p, &param_env))
                        .collect::<Result<_, _>>()?;
                    let nested_qubits: Vec<usize> = call
                        .args
                        .iter()
                        .map(|(name, idx)| {
                            if idx.is_some() {
                                return Err(ParseQasmError::new(
                                    "indexed arguments are not allowed inside gate bodies",
                                ));
                            }
                            arg_env.get(name).copied().ok_or_else(|| {
                                ParseQasmError::new(format!(
                                    "unknown formal argument `{name}` in gate body"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    self.emit_gate(&call.name, &nested_params, &nested_qubits, circuit)?;
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Statement {
    Call(RawCall),
    Measure((String, Option<usize>), (String, Option<usize>)),
    Reset((String, Option<usize>)),
    Barrier,
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval_expression(tokens: &[Token], env: &HashMap<String, f64>) -> Result<f64, ParseQasmError> {
    let mut parser = ExprParser {
        tokens,
        pos: 0,
        env,
    };
    let value = parser.parse_sum()?;
    if parser.pos != tokens.len() {
        return Err(ParseQasmError::new("trailing tokens in expression"));
    }
    Ok(value)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    env: &'a HashMap<String, f64>,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_sum(&mut self) -> Result<f64, ParseQasmError> {
        let mut value = self.parse_product()?;
        while let Some(Token::Symbol(op @ ('+' | '-'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.parse_product()?;
            value = if op == '+' { value + rhs } else { value - rhs };
        }
        Ok(value)
    }

    fn parse_product(&mut self) -> Result<f64, ParseQasmError> {
        let mut value = self.parse_unary()?;
        while let Some(Token::Symbol(op @ ('*' | '/' | '^'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.parse_unary()?;
            value = match op {
                '*' => value * rhs,
                '/' => value / rhs,
                _ => value.powf(rhs),
            };
        }
        Ok(value)
    }

    fn parse_unary(&mut self) -> Result<f64, ParseQasmError> {
        match self.peek() {
            Some(Token::Symbol('-')) => {
                self.pos += 1;
                Ok(-self.parse_unary()?)
            }
            Some(Token::Symbol('+')) => {
                self.pos += 1;
                self.parse_unary()
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<f64, ParseQasmError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(Token::Symbol('(')) => {
                self.pos += 1;
                let value = self.parse_sum()?;
                match self.peek() {
                    Some(Token::Symbol(')')) => {
                        self.pos += 1;
                        Ok(value)
                    }
                    _ => Err(ParseQasmError::new("missing closing parenthesis")),
                }
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "pi" => Ok(std::f64::consts::PI),
                    "sin" | "cos" | "tan" | "exp" | "ln" | "sqrt" => {
                        // Function call: expect parenthesised argument.
                        match self.peek() {
                            Some(Token::Symbol('(')) => {
                                self.pos += 1;
                                let arg = self.parse_sum()?;
                                match self.peek() {
                                    Some(Token::Symbol(')')) => self.pos += 1,
                                    _ => {
                                        return Err(ParseQasmError::new(
                                            "missing closing parenthesis after function",
                                        ))
                                    }
                                }
                                Ok(match name.as_str() {
                                    "sin" => arg.sin(),
                                    "cos" => arg.cos(),
                                    "tan" => arg.tan(),
                                    "exp" => arg.exp(),
                                    "ln" => arg.ln(),
                                    _ => arg.sqrt(),
                                })
                            }
                            _ => Err(ParseQasmError::new(format!(
                                "function `{name}` requires parentheses"
                            ))),
                        }
                    }
                    _ => self.env.get(&name).copied().ok_or_else(|| {
                        ParseQasmError::new(format!("unknown identifier `{name}` in expression"))
                    }),
                }
            }
            other => Err(ParseQasmError::new(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;

    #[test]
    fn parses_bell_circuit() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0], q[1];
            measure q -> c;
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.stats().gate_count, 2);
        assert_eq!(c.stats().measure_count, 2);
    }

    #[test]
    fn parses_parameter_expressions() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[1];
            rz(pi/2) q[0];
            rx(-pi/4 + 0.5) q[0];
            u3(2*pi, pi/8, sqrt(2)) q[0];
        "#;
        let c = parse_source(src).unwrap();
        match &c.operations()[0] {
            Operation::Gate {
                gate: Gate::Rz(angle),
                ..
            } => assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[1] {
            Operation::Gate {
                gate: Gate::Rx(angle),
                ..
            } => assert!((angle - (0.5 - std::f64::consts::FRAC_PI_4)).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn broadcasts_over_registers() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[3];
            h q;
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 3);
    }

    #[test]
    fn expands_custom_gate_definitions() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[2];
            gate bell a, b { h a; cx a, b; }
            gate rot(theta) a { rz(theta) a; rz(theta/2) a; }
            bell q[0], q[1];
            rot(pi) q[0];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 4);
        match &c.operations()[3] {
            Operation::Gate {
                gate: Gate::Rz(angle),
                ..
            } => assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn handles_multiple_registers() {
        let src = r#"
            OPENQASM 2.0;
            qreg a[2];
            qreg b[3];
            creg c[5];
            x a[1];
            x b[0];
            measure b[2] -> c[4];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 5);
        // a[1] -> flat index 1, b[0] -> flat index 2.
        match &c.operations()[0] {
            Operation::Gate { target, .. } => assert_eq!(*target, 1),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[1] {
            Operation::Gate { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected op {other:?}"),
        }
        match &c.operations()[2] {
            Operation::Measure { qubit, clbit } => {
                assert_eq!(*qubit, 4);
                assert_eq!(*clbit, 4);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn reports_unknown_gate() {
        let src = "OPENQASM 2.0; qreg q[1]; foo q[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
    }

    #[test]
    fn reports_missing_register() {
        let src = "OPENQASM 2.0; qreg q[1]; x r[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("unknown quantum register"));
    }

    #[test]
    fn rejects_classical_feedback() {
        let src = "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c == 1) x q[0];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn reports_out_of_range_index() {
        let src = "OPENQASM 2.0; qreg q[2]; x q[5];";
        let err = parse_source(src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn skips_comments_and_barriers() {
        let src = r#"
            OPENQASM 2.0;
            // prepare register
            qreg q[2];
            h q[0]; // superposition
            barrier q;
            cx q[0], q[1];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.stats().gate_count, 2);
    }

    #[test]
    fn parses_ccx_and_swap() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[3];
            ccx q[0], q[1], q[2];
            swap q[0], q[2];
            cswap q[0], q[1], q[2];
        "#;
        let c = parse_source(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert!(c.stats().gate_count >= 5);
    }
}
