//! # qsdd-circuit — quantum circuit IR, OpenQASM front-end and generators
//!
//! This crate defines the circuit representation shared by every simulator
//! back-end of the QSDD workspace:
//!
//! * [`Gate`] / [`Operation`] / [`Circuit`] — the intermediate
//!   representation, built either programmatically (builder methods) or from
//!   OpenQASM 2.0 sources via [`qasm::parse_source`],
//! * [`generators`] — the benchmark circuits used in the evaluation of the
//!   paper (entanglement/GHZ for Table Ia, QFT for Table Ib, and the
//!   QASMBench-style suite for Table Ic).
//!
//! ## Quick start
//!
//! ```
//! use qsdd_circuit::{Circuit, generators};
//!
//! // Build a Bell pair by hand ...
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1).measure_all();
//!
//! // ... or use a generator.
//! let ghz = generators::ghz(5);
//! assert_eq!(ghz.num_qubits(), 5);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod circuit;
mod gate;

pub mod generators;
pub mod qasm;

pub use circuit::{Circuit, CircuitStats, Operation};
pub use gate::Gate;
