//! The quantum circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Operation`]s over a fixed number of
//! qubits and classical bits. It is the common input format of every
//! simulator back-end in the workspace (decision diagram, statevector and
//! density matrix).

use std::fmt;

use crate::gate::Gate;

/// One step of a quantum circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A (possibly multi-controlled) unitary gate application.
    Gate {
        /// The base gate applied to the target.
        gate: Gate,
        /// Target qubit.
        target: usize,
        /// Control qubits (all must be `|1>` for the gate to fire).
        controls: Vec<usize>,
    },
    /// Exchange of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Projective measurement of one qubit into a classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        clbit: usize,
    },
    /// Reset of a qubit to `|0>`.
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
    /// A barrier (no semantic effect; kept for circuit fidelity).
    Barrier,
}

impl Operation {
    /// The qubits this operation touches (targets and controls).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Gate {
                target, controls, ..
            } => {
                let mut q = controls.clone();
                q.push(*target);
                q
            }
            Operation::Swap { a, b } => vec![*a, *b],
            Operation::Measure { qubit, .. } | Operation::Reset { qubit } => vec![*qubit],
            Operation::Barrier => Vec::new(),
        }
    }

    /// Returns `true` for unitary operations (gates and swaps).
    pub fn is_unitary(&self) -> bool {
        matches!(self, Operation::Gate { .. } | Operation::Swap { .. })
    }
}

/// Summary statistics of a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total number of unitary gate operations (swaps count as one).
    pub gate_count: usize,
    /// Number of operations acting on two or more qubits.
    pub multi_qubit_gate_count: usize,
    /// Number of measurement operations.
    pub measure_count: usize,
    /// Circuit depth (longest chain of operations per qubit, barriers ignored).
    pub depth: usize,
}

/// An ordered quantum circuit over `num_qubits` qubits.
///
/// Qubit 0 is the most significant qubit in basis-state indices, matching
/// the convention of the decision diagram package and of the paper.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::Circuit;
///
/// let mut circuit = Circuit::new(2);
/// circuit.h(0);
/// circuit.cx(0, 1);
/// circuit.measure_all();
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.stats().gate_count, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    operations: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and as many
    /// classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn new(num_qubits: usize) -> Self {
        Circuit::with_name(num_qubits, "circuit")
    }

    /// Creates an empty, named circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn with_name(num_qubits: usize, name: &str) -> Self {
        assert!(num_qubits > 0, "a circuit needs at least one qubit");
        Circuit {
            name: name.to_string(),
            num_qubits,
            num_clbits: num_qubits,
            operations: Vec::new(),
        }
    }

    /// Rebuilds a circuit from raw parts, validating every operation.
    ///
    /// This is the constructor used by the `qsdd-transpile` pass pipeline to
    /// materialise an optimized operation list back into a circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or any operation fails validation
    /// (see [`Circuit::push`]).
    pub fn from_parts(
        name: &str,
        num_qubits: usize,
        num_clbits: usize,
        operations: Vec<Operation>,
    ) -> Self {
        let mut circuit = Circuit::with_name(num_qubits, name);
        circuit.num_clbits = num_clbits;
        for op in operations {
            circuit.push(op);
        }
        circuit
    }

    /// The circuit name (used in benchmark reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Sets the number of classical bits (defaults to the qubit count).
    pub fn set_num_clbits(&mut self, clbits: usize) {
        self.num_clbits = clbits;
    }

    /// The operations in execution order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Iterates over the operations in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.operations.iter()
    }

    /// Number of operations (including measurements and barriers).
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Returns `true` when the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Appends a raw operation after validating its qubit indices.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range, a control equals the target, or
    /// controls are duplicated.
    pub fn push(&mut self, op: Operation) {
        self.validate(&op);
        self.operations.push(op);
    }

    fn validate(&self, op: &Operation) {
        for q in op.qubits() {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for circuit with {} qubits",
                self.num_qubits
            );
        }
        match op {
            Operation::Gate {
                target, controls, ..
            } => {
                assert!(
                    !controls.contains(target),
                    "control qubit {target} equals the target"
                );
                for (i, c) in controls.iter().enumerate() {
                    assert!(
                        !controls[i + 1..].contains(c),
                        "duplicate control qubit {c}"
                    );
                }
            }
            Operation::Swap { a, b } => {
                assert_ne!(a, b, "swap requires two distinct qubits");
            }
            Operation::Measure { clbit, .. } => {
                assert!(
                    *clbit < self.num_clbits,
                    "classical bit {clbit} out of range"
                );
            }
            _ => {}
        }
    }

    /// Appends every operation of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses more qubits than the target circuit"
        );
        for op in &other.operations {
            self.push(op.clone());
        }
    }

    /// Returns the adjoint circuit (gates inverted, order reversed).
    ///
    /// Measurements, resets and barriers are dropped since they have no
    /// unitary inverse.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_name(self.num_qubits, &format!("{}_dg", self.name));
        inv.num_clbits = self.num_clbits;
        for op in self.operations.iter().rev() {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => inv.push(Operation::Gate {
                    gate: gate.inverse(),
                    target: *target,
                    controls: controls.clone(),
                }),
                Operation::Swap { a, b } => inv.push(Operation::Swap { a: *a, b: *b }),
                _ => {}
            }
        }
        inv
    }

    /// Computes summary statistics for the circuit.
    pub fn stats(&self) -> CircuitStats {
        let mut stats = CircuitStats::default();
        let mut qubit_depth = vec![0usize; self.num_qubits];
        for op in &self.operations {
            match op {
                Operation::Gate { controls, .. } => {
                    stats.gate_count += 1;
                    if !controls.is_empty() {
                        stats.multi_qubit_gate_count += 1;
                    }
                }
                Operation::Swap { .. } => {
                    stats.gate_count += 1;
                    stats.multi_qubit_gate_count += 1;
                }
                Operation::Measure { .. } => stats.measure_count += 1,
                _ => {}
            }
            if matches!(op, Operation::Barrier) {
                continue;
            }
            let touched = op.qubits();
            let level = touched.iter().map(|&q| qubit_depth[q]).max().unwrap_or(0) + 1;
            for &q in &touched {
                qubit_depth[q] = level;
            }
        }
        stats.depth = qubit_depth.into_iter().max().unwrap_or(0);
        stats
    }

    // ------------------------------------------------------------------
    // Builder helpers
    // ------------------------------------------------------------------

    /// Applies an uncontrolled gate to `target`.
    pub fn gate(&mut self, gate: Gate, target: usize) -> &mut Self {
        self.push(Operation::Gate {
            gate,
            target,
            controls: Vec::new(),
        });
        self
    }

    /// Applies a controlled gate.
    pub fn controlled_gate(&mut self, gate: Gate, controls: &[usize], target: usize) -> &mut Self {
        self.push(Operation::Gate {
            gate,
            target,
            controls: controls.to_vec(),
        });
        self
    }

    /// Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, q)
    }

    /// Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, q)
    }

    /// Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, q)
    }

    /// Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, q)
    }

    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, q)
    }

    /// S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sdg, q)
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, q)
    }

    /// T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Tdg, q)
    }

    /// Square-root-of-X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sx, q)
    }

    /// X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rx(theta), q)
    }

    /// Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Ry(theta), q)
    }

    /// Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rz(theta), q)
    }

    /// Phase gate `p(lambda)`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.gate(Gate::Phase(lambda), q)
    }

    /// General single-qubit gate `u3`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.gate(Gate::U3(theta, phi, lambda), q)
    }

    /// CNOT gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::X, &[control], target)
    }

    /// Controlled-Y gate.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::Y, &[control], target)
    }

    /// Controlled-Z gate.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::Z, &[control], target)
    }

    /// Controlled-Hadamard gate.
    pub fn ch(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::H, &[control], target)
    }

    /// Controlled phase gate.
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::Phase(lambda), &[control], target)
    }

    /// Controlled Z-rotation.
    pub fn crz(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::Rz(theta), &[control], target)
    }

    /// Toffoli gate.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.controlled_gate(Gate::X, &[c0, c1], target)
    }

    /// Multi-controlled X gate.
    pub fn mcx(&mut self, controls: &[usize], target: usize) -> &mut Self {
        self.controlled_gate(Gate::X, controls, target)
    }

    /// Multi-controlled Z gate.
    pub fn mcz(&mut self, controls: &[usize], target: usize) -> &mut Self {
        self.controlled_gate(Gate::Z, controls, target)
    }

    /// SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Operation::Swap { a, b });
        self
    }

    /// Controlled SWAP (Fredkin) gate, decomposed as `cx; ccx; cx`.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) -> &mut Self {
        self.cx(b, a);
        self.controlled_gate(Gate::X, &[control, a], b);
        self.cx(b, a)
    }

    /// Measures `qubit` into classical bit `clbit`.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Self {
        self.push(Operation::Measure { qubit, clbit });
        self
    }

    /// Measures every qubit into the classical bit of the same index.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Resets a qubit to `|0>`.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        self.push(Operation::Reset { qubit });
        self
    }

    /// Inserts a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Operation::Barrier);
        self
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} operations)",
            self.name,
            self.num_qubits,
            self.operations.len()
        )?;
        for op in &self.operations {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } if controls.is_empty() => writeln!(f, "  {gate} q[{target}]")?,
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => writeln!(f, "  c{gate} {controls:?} -> q[{target}]")?,
                Operation::Swap { a, b } => writeln!(f, "  swap q[{a}], q[{b}]")?,
                Operation::Measure { qubit, clbit } => {
                    writeln!(f, "  measure q[{qubit}] -> c[{clbit}]")?
                }
                Operation::Reset { qubit } => writeln!(f, "  reset q[{qubit}]")?,
                Operation::Barrier => writeln!(f, "  barrier")?,
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.operations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_operations() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).measure_all();
        assert_eq!(c.len(), 6);
        assert_eq!(c.stats().gate_count, 3);
        assert_eq!(c.stats().multi_qubit_gate_count, 2);
        assert_eq!(c.stats().measure_count, 3);
    }

    #[test]
    fn depth_tracks_longest_qubit_chain() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1: all parallel
        assert_eq!(c.stats().depth, 1);
        c.cx(0, 1); // depth 2
        c.cx(1, 2); // depth 3
        assert_eq!(c.stats().depth, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "equals the target")]
    fn control_equal_to_target_panics() {
        let mut c = Circuit::new(2);
        c.controlled_gate(Gate::X, &[1], 1);
    }

    #[test]
    #[should_panic(expected = "duplicate control")]
    fn duplicate_controls_panic() {
        let mut c = Circuit::new(3);
        c.controlled_gate(Gate::X, &[0, 0], 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1).measure_all();
        let inv = c.inverse();
        // Measurements dropped, 3 unitaries reversed.
        assert_eq!(inv.len(), 3);
        match &inv.operations()[0] {
            Operation::Gate { gate, .. } => assert_eq!(*gate, Gate::X),
            other => panic!("unexpected first op {other:?}"),
        }
        match &inv.operations()[1] {
            Operation::Gate { gate, .. } => assert_eq!(*gate, Gate::Tdg),
            other => panic!("unexpected second op {other:?}"),
        }
    }

    #[test]
    fn append_copies_operations() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(3);
        b.x(2);
        b.append(&a);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn display_lists_operations() {
        let mut c = Circuit::with_name(2, "bell");
        c.h(0).cx(0, 1);
        let text = c.to_string();
        assert!(text.contains("bell"));
        assert!(text.contains("h q[0]"));
    }

    #[test]
    fn cswap_decomposition_has_three_gates() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        assert_eq!(c.stats().gate_count, 3);
    }
}
