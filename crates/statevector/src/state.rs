//! A dense state-vector representation of a pure quantum state.
//!
//! This is the array-based representation used by the baseline simulators
//! the paper compares against (Qiskit's statevector simulator and the Atos
//! QLM LinAlg simulator): all `2^n` amplitudes are stored explicitly and
//! every gate touches half (or a quarter) of them.
//!
//! The gate kernels are written as *flat pair-stride loops*: a pair index
//! `p` expands to the amplitude pair `(i, i | mask)` by inserting a zero
//! bit at the target qubit's position, so the inner loop has no branch on
//! the bit test and autovectorizes. The same pair space is partitioned
//! into fixed [`CHUNK`]-sized chunks, which an optional [`IntraPool`]
//! splits across threads; because the chunk boundaries do not depend on
//! the thread count and reductions merge per-chunk partial sums in chunk
//! order, every result is byte-identical to the serial path.

use std::sync::Arc;

use qsdd_dd::{Complex, IntraPool, Matrix2};
use rand::Rng;

/// Fixed width (in pair or amplitude indices) of one kernel chunk. Both
/// the serial and pooled paths partition work on these boundaries, so
/// floating-point reductions see the same association regardless of
/// `intra_threads`.
const CHUNK: usize = 1 << 14;

/// A raw pointer the fork-join closures may share across threads.
///
/// Safety is established at each use site: chunks address disjoint
/// amplitude pairs (or disjoint partial-sum slots), so no two threads
/// touch the same element.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    // A method (rather than direct field access) so closures capture the
    // Sync wrapper, not the raw pointer, under disjoint field capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Applies `m` to every amplitude pair whose pair index lies in `lo..hi`.
///
/// Pair index `p` expands to `i` by shifting the bits above the target
/// position left by one (inserting a zero at `mask`); `j = i | mask` is
/// the partner amplitude.
///
/// # Safety
///
/// Every pair index in `lo..hi` must expand to in-bounds amplitudes, and
/// no other thread may access those pairs concurrently.
unsafe fn single_qubit_pairs(amps: *mut Complex, mask: usize, m: &Matrix2, lo: usize, hi: usize) {
    let (m00, m01) = (m.entry(0, 0), m.entry(0, 1));
    let (m10, m11) = (m.entry(1, 0), m.entry(1, 1));
    let low = mask - 1;
    for p in lo..hi {
        let i = ((p & !low) << 1) | (p & low);
        let j = i | mask;
        let a0 = *amps.add(i);
        let a1 = *amps.add(j);
        *amps.add(i) = m00 * a0 + m01 * a1;
        *amps.add(j) = m10 * a0 + m11 * a1;
    }
}

/// Like [`single_qubit_pairs`], but only touches pairs whose index has
/// every bit of `control_mask` set.
///
/// # Safety
///
/// Same contract as [`single_qubit_pairs`].
unsafe fn controlled_pairs(
    amps: *mut Complex,
    mask: usize,
    control_mask: usize,
    m: &Matrix2,
    lo: usize,
    hi: usize,
) {
    let (m00, m01) = (m.entry(0, 0), m.entry(0, 1));
    let (m10, m11) = (m.entry(1, 0), m.entry(1, 1));
    let low = mask - 1;
    for p in lo..hi {
        let i = ((p & !low) << 1) | (p & low);
        if i & control_mask == control_mask {
            let j = i | mask;
            let a0 = *amps.add(i);
            let a1 = *amps.add(j);
            *amps.add(i) = m00 * a0 + m01 * a1;
            *amps.add(j) = m10 * a0 + m11 * a1;
        }
    }
}

/// Exchanges the amplitudes of `|..a=1,b=0..>` and `|..a=0,b=1..>` for
/// every pair index in `lo..hi` (the pair space of qubit mask `ma`).
///
/// # Safety
///
/// Same contract as [`single_qubit_pairs`]: sources (`ma` set) and
/// destinations (`mb` set, `ma` clear) are disjoint across pair indices.
unsafe fn swap_pairs(amps: *mut Complex, ma: usize, mb: usize, lo: usize, hi: usize) {
    let low = ma - 1;
    for p in lo..hi {
        let i = ((p & !low) << 1) | (p & low) | ma;
        if i & mb == 0 {
            let j = (i & !ma) | mb;
            let tmp = *amps.add(i);
            *amps.add(i) = *amps.add(j);
            *amps.add(j) = tmp;
        }
    }
}

/// A dense `2^n` amplitude vector.
///
/// Qubit 0 is the most significant bit of the basis-state index, matching
/// the convention of the decision diagram package.
///
/// # Examples
///
/// ```
/// use qsdd_dd::Matrix2;
/// use qsdd_statevector::StateVector;
///
/// let mut state = StateVector::new(2);
/// state.apply_single(0, &Matrix2::hadamard());
/// state.apply_controlled(&[0], 1, &Matrix2::pauli_x());
/// assert!((state.probability_of_index(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability_of_index(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
    pool: Option<Arc<IntraPool>>,
}

impl PartialEq for StateVector {
    // The pool is an execution detail, not part of the state's value.
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.amplitudes == other.amplitudes
    }
}

impl Clone for StateVector {
    fn clone(&self) -> Self {
        StateVector {
            num_qubits: self.num_qubits,
            amplitudes: self.amplitudes.clone(),
            pool: self.pool.clone(),
        }
    }

    // Hand-rolled so per-shot scratch copies (e.g. the amplitude-damping
    // branch probe) reuse their existing allocation.
    fn clone_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.amplitudes.clone_from(&source.amplitudes);
        self.pool.clone_from(&source.pool);
    }
}

impl StateVector {
    /// Creates the all-zero basis state `|0...0>` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 30` (the dense representation would not
    /// fit in memory).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "state must contain at least one qubit");
        assert!(
            n <= 30,
            "dense state vectors above 30 qubits are not supported"
        );
        let mut amplitudes = vec![Complex::ZERO; 1usize << n];
        amplitudes[0] = Complex::ONE;
        StateVector {
            num_qubits: n,
            amplitudes,
            pool: None,
        }
    }

    /// Creates a state from explicit amplitudes (length must be `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two of at least 2.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        assert!(
            amplitudes.len() >= 2 && amplitudes.len().is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            num_qubits: amplitudes.len().trailing_zeros() as usize,
            amplitudes,
            pool: None,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Installs (or clears) the fork-join pool used by the gate kernels
    /// and reductions. A pool with one thread is equivalent to `None`.
    ///
    /// Results are byte-identical with and without a pool: the chunk
    /// partition is fixed and partial sums merge in chunk order.
    pub fn set_intra_pool(&mut self, pool: Option<Arc<IntraPool>>) {
        self.pool = pool;
    }

    /// The pool that will actually run work in parallel, if any.
    fn active_pool(&self) -> Option<Arc<IntraPool>> {
        self.pool.clone().filter(|p| p.threads() > 1)
    }

    /// Rewinds the state to `|0...0>` in place, without reallocating.
    ///
    /// This is the dense back-end's per-shot reset: a reused execution
    /// context calls it between shots instead of building a new vector.
    pub fn reset_to_zero(&mut self) {
        self.amplitudes.fill(Complex::ZERO);
        self.amplitudes[0] = Complex::ONE;
    }

    /// The raw amplitudes in basis order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: u64) -> Complex {
        self.amplitudes[index as usize]
    }

    /// The probability of observing basis state `index`.
    pub fn probability_of_index(&self, index: u64) -> f64 {
        self.amplitudes[index as usize].norm_sqr()
    }

    fn bit_mask(&self, qubit: usize) -> usize {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        1usize << (self.num_qubits - 1 - qubit)
    }

    /// Runs `kernel` over the pair-index range `0..pairs`, split into
    /// fixed chunks across the pool when one is installed.
    ///
    /// # Safety contract (internal)
    ///
    /// `kernel(lo, hi)` must only touch amplitudes reachable from pair
    /// indices in `lo..hi`, and distinct pair indices must address
    /// disjoint amplitudes.
    fn run_pair_kernel(
        &mut self,
        pairs: usize,
        kernel: impl Fn(*mut Complex, usize, usize) + Sync,
    ) {
        let pool = self.active_pool();
        let base = SendPtr(self.amplitudes.as_mut_ptr());
        match pool {
            Some(pool) => {
                let chunks = pairs.div_ceil(CHUNK);
                pool.for_each_chunk(chunks, &|c| {
                    let lo = c * CHUNK;
                    kernel(base.get(), lo, (lo + CHUNK).min(pairs));
                });
            }
            None => kernel(base.get(), 0, pairs),
        }
    }

    /// Applies a single-qubit unitary (or Kraus operator) to `target`.
    pub fn apply_single(&mut self, target: usize, m: &Matrix2) {
        let mask = self.bit_mask(target);
        let pairs = self.amplitudes.len() >> 1;
        // SAFETY: every pair index below `pairs` expands to two in-bounds
        // amplitudes, and distinct pair indices never share an amplitude.
        self.run_pair_kernel(pairs, |amps, lo, hi| unsafe {
            single_qubit_pairs(amps, mask, m, lo, hi)
        });
    }

    /// Applies a single-qubit operator to `target`, conditioned on every
    /// qubit in `controls` being `|1>`.
    ///
    /// # Panics
    ///
    /// Panics if a control equals the target or an index is out of range.
    pub fn apply_controlled(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        if controls.is_empty() {
            return self.apply_single(target, m);
        }
        assert!(
            !controls.contains(&target),
            "control qubit equals the target"
        );
        let mask = self.bit_mask(target);
        let control_mask: usize = controls.iter().map(|&c| self.bit_mask(c)).sum();
        let pairs = self.amplitudes.len() >> 1;
        // SAFETY: as in `apply_single`; the control test only skips pairs.
        self.run_pair_kernel(pairs, |amps, lo, hi| unsafe {
            controlled_pairs(amps, mask, control_mask, m, lo, hi)
        });
    }

    /// Exchanges two qubits.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "swap requires two distinct qubits");
        let ma = self.bit_mask(a);
        let mb = self.bit_mask(b);
        let pairs = self.amplitudes.len() >> 1;
        // SAFETY: sources have `ma` set and destinations have `ma` clear,
        // so the index sets are disjoint across the whole pair space.
        self.run_pair_kernel(pairs, |amps, lo, hi| unsafe {
            swap_pairs(amps, ma, mb, lo, hi)
        });
    }

    /// Sums `f(index, amplitude)` over all amplitudes by fixed chunks,
    /// merging the per-chunk partial sums in chunk order. Serial and
    /// pooled paths produce bit-identical results because the chunk
    /// boundaries and both summation orders are independent of the pool.
    fn chunked_sum(&self, f: impl Fn(usize, Complex) -> f64 + Sync) -> f64 {
        let len = self.amplitudes.len();
        let chunks = len.div_ceil(CHUNK);
        let mut partials = vec![0.0f64; chunks];
        let amps = &self.amplitudes;
        let sum_chunk = |c: usize| -> f64 {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(len);
            let mut acc = 0.0;
            for (offset, a) in amps[lo..hi].iter().enumerate() {
                acc += f(lo + offset, *a);
            }
            acc
        };
        match self.active_pool() {
            Some(pool) => {
                let out = SendPtr(partials.as_mut_ptr());
                pool.for_each_chunk(chunks, &|c| {
                    // SAFETY: each chunk index writes only its own slot.
                    unsafe { *out.get().add(c) = sum_chunk(c) };
                });
            }
            None => {
                for (c, slot) in partials.iter_mut().enumerate() {
                    *slot = sum_chunk(c);
                }
            }
        }
        partials.iter().sum()
    }

    /// Squared Euclidean norm of the state.
    pub fn norm_sqr(&self) -> f64 {
        self.chunked_sum(|_, a| a.norm_sqr())
    }

    /// Rescales the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 0.0, "cannot normalise the zero vector");
        for a in &mut self.amplitudes {
            *a = a.scale(1.0 / norm);
        }
    }

    /// Probability of observing `|1>` on `qubit` (relative to the norm).
    pub fn probability_one(&self, qubit: usize) -> f64 {
        let mask = self.bit_mask(qubit);
        let p1 = self.chunked_sum(|i, a| if i & mask != 0 { a.norm_sqr() } else { 0.0 });
        let total = self.norm_sqr();
        if total <= 0.0 {
            0.0
        } else {
            (p1 / total).clamp(0.0, 1.0)
        }
    }

    /// Draws one complete measurement outcome without collapsing the state.
    pub fn sample_measurement<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let total = self.norm_sqr();
        let mut threshold = rng.gen::<f64>() * total;
        for (i, a) in self.amplitudes.iter().enumerate() {
            threshold -= a.norm_sqr();
            if threshold <= 0.0 {
                return i as u64;
            }
        }
        (self.amplitudes.len() - 1) as u64
    }

    /// Projects onto `qubit = outcome` without renormalising; the squared
    /// norm of the result is the outcome probability.
    pub fn project(&mut self, qubit: usize, outcome: bool) {
        let mask = self.bit_mask(qubit);
        for (i, a) in self.amplitudes.iter_mut().enumerate() {
            let bit = i & mask != 0;
            if bit != outcome {
                *a = Complex::ZERO;
            }
        }
    }

    /// Measures one qubit, collapsing the state, and returns the outcome.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(qubit);
        let outcome = rng.gen::<f64>() < p1;
        self.project(qubit, outcome);
        self.normalize();
        outcome
    }

    /// Resets a qubit to `|0>` by measuring it and flipping when needed.
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        let outcome = self.measure_qubit(qubit, rng);
        if outcome {
            self.apply_single(qubit, &Matrix2::pauli_x());
        }
    }

    /// Re-expresses the state under a qubit relabeling.
    ///
    /// `layout[q] = j` means: qubit `q` of the *returned* state takes the
    /// amplitude role of qubit `j` of `self`. Formally, for every basis
    /// index `b` of the result, `result[b] = self[b']` where bit `q` of `b`
    /// equals bit `layout[q]` of `b'`.
    ///
    /// This is how the transpiler's elided trailing SWAP gates are undone:
    /// running the optimized circuit and permuting with the recorded output
    /// layout reproduces the original circuit's state exactly.
    ///
    /// # Panics
    ///
    /// Panics if `layout` is not a permutation of `0..num_qubits`.
    pub fn permute_qubits(&self, layout: &[usize]) -> StateVector {
        let n = self.num_qubits;
        assert_eq!(layout.len(), n, "layout length must match the qubit count");
        let mut seen = vec![false; n];
        for &j in layout {
            assert!(j < n && !seen[j], "layout is not a permutation");
            seen[j] = true;
        }
        let mut amplitudes = vec![Complex::ZERO; self.amplitudes.len()];
        for (b, amp) in amplitudes.iter_mut().enumerate() {
            let mut source = 0usize;
            for (q, &j) in layout.iter().enumerate() {
                if b >> (n - 1 - q) & 1 == 1 {
                    source |= 1 << (n - 1 - j);
                }
            }
            *amp = self.amplitudes[source];
        }
        StateVector {
            num_qubits: n,
            amplitudes,
            pool: self.pool.clone(),
        }
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "states have different sizes"
        );
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_state_is_all_zero_basis_state() {
        let s = StateVector::new(3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.probability_of_index(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_the_most_significant_qubit() {
        let mut s = StateVector::new(3);
        s.apply_single(0, &Matrix2::pauli_x());
        assert!((s.probability_of_index(0b100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_then_cx_creates_bell_state() {
        let mut s = StateVector::new(2);
        s.apply_single(0, &Matrix2::hadamard());
        s.apply_controlled(&[0], 1, &Matrix2::pauli_x());
        assert!((s.probability_of_index(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of_index(3) - 0.5).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_gate_does_nothing_without_control() {
        let mut s = StateVector::new(2);
        s.apply_controlled(&[0], 1, &Matrix2::pauli_x());
        assert!((s.probability_of_index(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::new(2);
        s.apply_single(1, &Matrix2::pauli_x()); // |01>
        s.apply_swap(0, 1); // -> |10>
        assert!((s.probability_of_index(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut s = StateVector::new(1);
        s.apply_single(0, &Matrix2::ry(2.0 * (0.3f64).sqrt().asin()));
        // Probability of |1> is 0.3 by construction.
        assert!((s.probability_one(0) - 0.3).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        let ones: usize = (0..20_000)
            .map(|_| usize::from(s.sample_measurement(&mut rng) == 1))
            .sum();
        let rate = ones as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn measuring_collapses_the_state() {
        let mut s = StateVector::new(2);
        s.apply_single(0, &Matrix2::hadamard());
        s.apply_controlled(&[0], 1, &Matrix2::pauli_x());
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = s.measure_qubit(0, &mut rng);
        let p1 = s.probability_one(1);
        if outcome {
            assert!((p1 - 1.0).abs() < 1e-10);
        } else {
            assert!(p1.abs() < 1e-10);
        }
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut s = StateVector::new(1);
        s.apply_single(0, &Matrix2::hadamard());
        let mut rng = StdRng::seed_from_u64(3);
        s.reset_qubit(0, &mut rng);
        assert!(s.probability_one(0).abs() < 1e-12);
    }

    #[test]
    fn permute_qubits_matches_an_explicit_swap() {
        // Prepare |01> then compare swap-as-gate against swap-as-relabeling.
        let mut swapped = StateVector::new(2);
        swapped.apply_single(1, &Matrix2::pauli_x());
        let relabeled = swapped.permute_qubits(&[1, 0]);
        swapped.apply_swap(0, 1);
        assert!((swapped.fidelity(&relabeled) - 1.0).abs() < 1e-12);
        assert!((relabeled.probability_of_index(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_layout_is_a_no_op() {
        let mut s = StateVector::new(3);
        s.apply_single(0, &Matrix2::hadamard());
        s.apply_controlled(&[0], 2, &Matrix2::pauli_x());
        let p = s.permute_qubits(&[0, 1, 2]);
        assert_eq!(s, p);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_layout_panics() {
        let s = StateVector::new(2);
        s.permute_qubits(&[0, 0]);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::new(2);
        a.apply_single(0, &Matrix2::hadamard());
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit index out of range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::new(2);
        s.apply_single(5, &Matrix2::pauli_x());
    }

    /// Runs the same non-trivial circuit with and without a pool on a
    /// state large enough to span several kernel chunks (17 qubits =
    /// 2^17 amplitudes = 8 chunks), then compares every amplitude and
    /// both reductions bit for bit — the core determinism contract of
    /// the intra-shot parallel kernels.
    #[test]
    fn pooled_kernels_are_bit_identical_to_serial() {
        fn build(pool: Option<Arc<IntraPool>>) -> StateVector {
            let n = 17;
            let mut s = StateVector::new(n);
            s.set_intra_pool(pool);
            for q in 0..n {
                s.apply_single(q, &Matrix2::hadamard());
            }
            for q in 0..n - 1 {
                s.apply_controlled(&[q], q + 1, &Matrix2::phase(0.37 * (q as f64 + 1.0)));
            }
            s.apply_controlled(&[0, 8], 16, &Matrix2::ry(0.81));
            s.apply_swap(0, n - 1);
            s.apply_single(3, &Matrix2::u3(0.4, 1.1, -0.6));
            s
        }
        let serial = build(None);
        for threads in [2, 4] {
            let pooled = build(Some(Arc::new(IntraPool::new(threads))));
            for (a, b) in serial.amplitudes().iter().zip(pooled.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            assert_eq!(serial.norm_sqr().to_bits(), pooled.norm_sqr().to_bits());
            assert_eq!(
                serial.probability_one(5).to_bits(),
                pooled.probability_one(5).to_bits()
            );
        }
    }

    /// A 1-thread pool must behave exactly like no pool at all.
    #[test]
    fn one_thread_pool_is_a_no_op() {
        let mut s = StateVector::new(4);
        s.set_intra_pool(Some(Arc::new(IntraPool::new(1))));
        s.apply_single(0, &Matrix2::hadamard());
        s.apply_controlled(&[0], 3, &Matrix2::pauli_x());
        assert!((s.probability_of_index(0b0000) - 0.5).abs() < 1e-12);
        assert!((s.probability_of_index(0b1001) - 0.5).abs() < 1e-12);
    }
}
