//! # qsdd-statevector — dense statevector baseline
//!
//! A straightforward array-based state-vector simulator. Every state over
//! `n` qubits is stored as `2^n` complex amplitudes and every gate sweeps
//! over the whole array.
//!
//! Within the QSDD workspace this crate is the stand-in for the dense
//! baseline simulators the paper compares against (IBM Qiskit's statevector
//! simulator and the Atos QLM LinAlg simulator): it has the same asymptotic
//! cost profile — Θ(2ⁿ) memory and Θ(2ⁿ) work per gate — independent of any
//! structure in the state. The comparison against the decision-diagram
//! back-end in `qsdd-core` therefore reproduces the *shape* of the paper's
//! Table I results.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_circuit::generators::ghz;
//! use qsdd_statevector::run_noiseless;
//!
//! let state = run_noiseless(&ghz(3));
//! assert!((state.probability_of_index(0b000) - 0.5).abs() < 1e-12);
//! assert!((state.probability_of_index(0b111) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod executor;
mod state;

pub use executor::{apply_unitary_operation, run_noiseless, run_with_measurements};
pub use state::StateVector;
