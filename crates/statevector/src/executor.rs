//! Noiseless circuit execution on dense state vectors.
//!
//! The stochastic (noisy) execution loop for this back-end lives in
//! `qsdd-core`, which drives both the decision diagram and the dense
//! back-end through the same Monte-Carlo runner. The helpers here are used
//! for noiseless reference runs and for tests.

use qsdd_circuit::{Circuit, Operation};
use rand::Rng;

use crate::state::StateVector;

/// Runs the unitary part of a circuit on `|0...0>` without noise, ignoring
/// measurements, resets and barriers, and returns the final state.
///
/// # Panics
///
/// Panics if the circuit is wider than 30 qubits (dense limit).
pub fn run_noiseless(circuit: &Circuit) -> StateVector {
    let mut state = StateVector::new(circuit.num_qubits());
    for op in circuit {
        apply_unitary_operation(&mut state, op);
    }
    state
}

/// Runs the full circuit including measurements and resets, using `rng` for
/// the measurement outcomes. Returns the final state and the classical bits.
pub fn run_with_measurements<R: Rng + ?Sized>(
    circuit: &Circuit,
    rng: &mut R,
) -> (StateVector, Vec<bool>) {
    let mut state = StateVector::new(circuit.num_qubits());
    let mut clbits = vec![false; circuit.num_clbits()];
    for op in circuit {
        match op {
            Operation::Measure { qubit, clbit } => {
                clbits[*clbit] = state.measure_qubit(*qubit, rng);
            }
            Operation::Reset { qubit } => state.reset_qubit(*qubit, rng),
            other => apply_unitary_operation(&mut state, other),
        }
    }
    (state, clbits)
}

/// Applies one unitary circuit operation to a dense state. Measurements,
/// resets and barriers are ignored.
pub fn apply_unitary_operation(state: &mut StateVector, op: &Operation) {
    match op {
        Operation::Gate {
            gate,
            target,
            controls,
        } => {
            let m = gate
                .matrix()
                .expect("non-swap gates always provide a matrix");
            state.apply_controlled(controls, *target, &m);
        }
        Operation::Swap { a, b } => state.apply_swap(*a, *b),
        Operation::Measure { .. } | Operation::Reset { .. } | Operation::Barrier => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, qft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_state_has_two_equal_peaks() {
        let state = run_noiseless(&ghz(4));
        assert!((state.probability_of_index(0) - 0.5).abs() < 1e-12);
        assert!((state.probability_of_index(15) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let state = run_noiseless(&qft(4));
        for i in 0..16u64 {
            assert!((state.probability_of_index(i) - 1.0 / 16.0).abs() < 1e-10);
        }
    }

    #[test]
    fn measurements_populate_classical_bits() {
        let mut circuit = Circuit::new(2);
        circuit.x(0).measure_all();
        let mut rng = StdRng::seed_from_u64(0);
        let (_, clbits) = run_with_measurements(&circuit, &mut rng);
        assert_eq!(clbits, vec![true, false]);
    }

    #[test]
    fn norm_is_preserved_by_noiseless_execution() {
        let state = run_noiseless(&qsdd_circuit::generators::random_circuit(6, 8, 3));
        assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
